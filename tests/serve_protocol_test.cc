// Parser/protocol negative battery for the mhbc_serve surface: every
// malformed line in this file must come back as ONE well-formed response
// carrying the documented error class (docs/serving.md) — and the server
// must keep answering afterwards. The sanity probe at the end of each
// test is the "without killing the daemon" half of that contract.

#include <cmath>
#include <string>
#include <vector>

#include "datasets/registry.h"
#include "gtest/gtest.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace mhbc::serve {
namespace {

class ServeProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto graph = MakeDataset("caveman-36");
    ASSERT_TRUE(graph.ok());
    ASSERT_TRUE(catalog_
                    .AddGraph("caveman-36", std::move(graph).value(),
                              EngineOptions(), /*sessions=*/1)
                    .ok());
    ServerOptions options;
    options.workers = 1;
    options.max_line_bytes = 4096;  // small so the oversize test is cheap
    server_ = std::make_unique<Server>(&catalog_, options);
  }

  /// Calls the server and asserts the response parses as an error of
  /// `expected` class.
  ServeResponse ExpectError(const std::string& line, ServeErrorClass expected) {
    const std::string response_line = server_->Call(line);
    auto response = ParseServeResponse(response_line);
    EXPECT_TRUE(response.ok()) << response_line;
    if (!response.ok()) return ServeResponse{};
    EXPECT_FALSE(response.value().ok) << response_line;
    EXPECT_EQ(ServeErrorClassName(response.value().error_class),
              std::string(ServeErrorClassName(expected)))
        << response_line;
    return std::move(response).value();
  }

  /// The daemon-survival probe: a valid request must still succeed.
  void ExpectStillServing() {
    const std::string line = server_->Call(
        R"({"id": 777, "method": "estimate", "graph": "caveman-36", )"
        R"("vertices": [0], "samples": 50})");
    auto response = ParseServeResponse(line);
    ASSERT_TRUE(response.ok()) << line;
    EXPECT_TRUE(response.value().ok) << line;
    EXPECT_EQ(response.value().id, 777u);
    ASSERT_EQ(response.value().reports.size(), 1u);
    EXPECT_EQ(response.value().reports[0].vertex, 0u);
  }

  GraphCatalog catalog_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServeProtocolTest, TruncatedAndMalformedJsonIsParseClass) {
  for (const char* line : {
           "",                                     // empty line
           "{",                                    // truncated object
           R"({"method": "stats")",                // missing brace
           R"({"method": "stats"} trailing)",      // trailing garbage
           R"({"method": "stats" "id": 1})",       // missing comma
           R"({"method": })",                      // missing value
           R"("just a string")" "extra",           // two documents
           "[1, 2, 3]",                            // not an object... parse?
           "not json at all",
           R"({"method": "stats", "method": "stats"})",  // duplicate key
       }) {
    ExpectError(line, ServeErrorClass::kParse);
  }
  ExpectStillServing();
}

TEST_F(ServeProtocolTest, OversizedLineRejectedBeforeJsonParsing) {
  std::string line = R"({"method": "stats", "graph": ")";
  line.append(8192, 'x');  // far past max_line_bytes=4096
  line += R"("})";
  const ServeResponse response = ExpectError(line, ServeErrorClass::kParse);
  EXPECT_NE(response.message.find("byte limit"), std::string::npos)
      << response.message;
  ExpectStillServing();
}

TEST_F(ServeProtocolTest, MissingAndUnknownMethodIsMethodClass) {
  ExpectError(R"({"id": 4})", ServeErrorClass::kMethod);
  ExpectError(R"({"id": 4, "method": "frobnicate"})", ServeErrorClass::kMethod);
  ExpectError(R"({"method": 7})", ServeErrorClass::kMethod);
  // The id is still echoed so pipelining clients can match the failure.
  const ServeResponse echoed =
      ExpectError(R"({"id": 42, "method": "nope"})", ServeErrorClass::kMethod);
  EXPECT_TRUE(echoed.has_id);
  EXPECT_EQ(echoed.id, 42u);
  ExpectStillServing();
}

TEST_F(ServeProtocolTest, UnknownGraphIsGraphClass) {
  const ServeResponse response = ExpectError(
      R"({"method": "estimate", "graph": "no-such", "vertices": [0]})",
      ServeErrorClass::kGraph);
  // The message lists what IS being served, for operator sanity.
  EXPECT_NE(response.message.find("caveman-36"), std::string::npos);
  ExpectError(R"({"method": "stats", "graph": "no-such"})",
              ServeErrorClass::kGraph);
  ExpectStillServing();
}

TEST_F(ServeProtocolTest, VertexIdProblemsAreFieldClass) {
  // Type/range problems caught at parse time...
  for (const char* line : {
           R"({"method": "estimate", "graph": "caveman-36", "vertices": 3})",
           R"({"method": "estimate", "graph": "caveman-36", "vertices": ["a"]})",
           R"({"method": "estimate", "graph": "caveman-36", "vertices": [-1]})",
           R"({"method": "estimate", "graph": "caveman-36", "vertices": [1.5]})",
           R"({"method": "estimate", "graph": "caveman-36", "vertices": [4294967295]})",
           R"({"method": "estimate", "graph": "caveman-36", "vertices": []})",
       }) {
    ExpectError(line, ServeErrorClass::kField);
  }
  // ...and graph-relative range problems caught at execution time.
  const ServeResponse response = ExpectError(
      R"({"method": "estimate", "graph": "caveman-36", "vertices": [36]})",
      ServeErrorClass::kField);
  EXPECT_NE(response.message.find("out of range"), std::string::npos);
  ExpectStillServing();
}

TEST_F(ServeProtocolTest, MalformedBudgetFieldsAreFieldClass) {
  for (const char* line : {
           // deadline_ms: wrong type, negative, non-finite-ish strings
           R"({"method": "estimate", "graph": "caveman-36", "vertices": [0], "deadline_ms": "soon"})",
           R"({"method": "estimate", "graph": "caveman-36", "vertices": [0], "deadline_ms": -5})",
           // samples: fractional, negative, wrong type, absurd
           R"({"method": "estimate", "graph": "caveman-36", "vertices": [0], "samples": 1.5})",
           R"({"method": "estimate", "graph": "caveman-36", "vertices": [0], "samples": -3})",
           R"({"method": "estimate", "graph": "caveman-36", "vertices": [0], "samples": "many"})",
           R"({"method": "estimate", "graph": "caveman-36", "vertices": [0], "samples": 99999999999999999999})",
           R"({"method": "estimate", "graph": "caveman-36", "vertices": [0], "samples": 0})",
           // priority outside [0, 9]
           R"({"method": "estimate", "graph": "caveman-36", "vertices": [0], "priority": 10})",
           R"({"method": "estimate", "graph": "caveman-36", "vertices": [0], "priority": -1})",
           // estimator registry miss
           R"({"method": "estimate", "graph": "caveman-36", "vertices": [0], "estimator": "frobnicator"})",
           // topk shape
           R"({"method": "topk", "graph": "caveman-36", "k": 0})",
           R"({"method": "topk", "graph": "caveman-36", "eps": 2.0})",
           // unknown field: strict surface, no silent typo swallowing
           R"({"method": "estimate", "graph": "caveman-36", "vertices": [0], "sample": 100})",
       }) {
    ExpectError(line, ServeErrorClass::kField);
  }
  ExpectStillServing();
}

TEST_F(ServeProtocolTest, MutateValidationIsFieldClass) {
  // Missing/empty edit script, unparseable script, semantically invalid
  // script (removing a non-edge) — all the client's fault.
  ExpectError(R"({"method": "mutate", "graph": "caveman-36"})",
              ServeErrorClass::kField);
  ExpectError(
      R"({"method": "mutate", "graph": "caveman-36", "edits": "frob 1 2"})",
      ServeErrorClass::kField);
  const ServeResponse response = ExpectError(
      R"({"method": "mutate", "graph": "caveman-36", "edits": "remove 40 41"})",
      ServeErrorClass::kField);
  EXPECT_FALSE(response.message.empty());
  // A failed mutate must not advance the epoch.
  const auto stats = ParseServeResponse(server_->Call(
      R"({"method": "stats", "graph": "caveman-36"})"));
  ASSERT_TRUE(stats.ok());
  const JsonValue* graphs = stats.value().body.Find("result")->Find("graphs");
  ASSERT_NE(graphs, nullptr);
  const JsonValue* epoch = graphs->array.at(0).Find("epoch");
  ASSERT_NE(epoch, nullptr);
  EXPECT_EQ(epoch->number_value, 0.0);
  ExpectStillServing();
}

TEST_F(ServeProtocolTest, JsonDoubleRoundTripsBitForBit) {
  // %.17g through strtod must reproduce the exact bits — this is what
  // makes the concurrency suite's wire-level bit-identity check valid.
  for (const double value :
       {0.1, 1.0 / 3.0, 6.02214076e23, 5e-324, 0.0, 123456.789012345678}) {
    auto parsed = ParseJson(JsonDouble(value));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().number_value, value);
  }
  EXPECT_EQ(JsonDouble(std::nan("")), "null");  // JSON has no NaN
}

TEST_F(ServeProtocolTest, RequestDefaultsAndFieldLifting) {
  ServeRequest request;
  ServeError error;
  ASSERT_TRUE(ParseServeRequest(
      R"({"id": 9, "method": "estimate", "graph": "g", "vertices": [3, 1],)"
      R"( "estimator": "mh-rb", "samples": 250, "seed": 99,)"
      R"( "deadline_ms": 1500.5, "priority": 7})",
      1 << 20, &request, &error));
  EXPECT_EQ(request.id, 9u);
  EXPECT_EQ(request.method, ServeMethod::kEstimate);
  EXPECT_EQ(request.graph, "g");
  EXPECT_EQ(request.vertices, (std::vector<VertexId>{3, 1}));
  EXPECT_EQ(request.estimator, EstimatorKind::kMhRaoBlackwell);
  EXPECT_EQ(request.samples, 250u);
  EXPECT_EQ(request.seed, 99u);
  EXPECT_EQ(request.deadline_ms, 1500.5);
  EXPECT_EQ(request.priority, 7);

  ServeRequest defaults;
  ASSERT_TRUE(ParseServeRequest(R"({"method": "stats"})", 1 << 20, &defaults,
                                &error));
  EXPECT_FALSE(defaults.has_id);
  EXPECT_LT(defaults.deadline_ms, 0.0);  // "no deadline"
  EXPECT_EQ(defaults.priority, 0);
}

}  // namespace
}  // namespace mhbc::serve
