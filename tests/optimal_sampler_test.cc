#include "baselines/optimal_sampler.h"

#include <gtest/gtest.h>

#include "exact/brandes.h"
#include "graph/generators.h"

namespace mhbc {
namespace {

TEST(OptimalSamplerTest, ZeroVarianceSingleSample) {
  // The optimal sampler of [13] has error 0 with a single sample.
  const CsrGraph g = MakeBarabasiAlbert(40, 2, 3);
  OptimalSampler sampler(g, 7);
  for (VertexId r = 0; r < 10; ++r) {
    const double exact = ExactBetweennessSingle(g, r);
    if (exact == 0.0) continue;  // zero-score targets have no distribution
    EXPECT_NEAR(sampler.Estimate(r, 1), exact, 1e-9) << "target " << r;
  }
}

TEST(OptimalSamplerTest, ProbabilitiesMatchEq5) {
  const CsrGraph g = MakePath(5);
  OptimalSampler sampler(g, 11);
  const auto& p = sampler.probabilities(2);
  // delta profile on center of P5: sources 0,1,3,4 have deltas 2,... from
  // each endpoint: delta = 2 (two targets beyond center), from inner: 1?
  // Source 0: targets {3,4} through 2 -> 2. Source 1: targets {3,4} -> 2.
  // Symmetric: sum = 8.
  EXPECT_DOUBLE_EQ(p[0], 2.0 / 8.0);
  EXPECT_DOUBLE_EQ(p[1], 2.0 / 8.0);
  EXPECT_DOUBLE_EQ(p[2], 0.0);
  EXPECT_DOUBLE_EQ(p[3], 2.0 / 8.0);
  EXPECT_DOUBLE_EQ(p[4], 2.0 / 8.0);
}

TEST(OptimalSamplerTest, ProbabilitiesSumToOne) {
  const CsrGraph g = MakeBarbell(4, 2);
  OptimalSampler sampler(g, 13);
  const auto& p = sampler.probabilities(4);
  double total = 0.0;
  for (double x : p) total += x;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(OptimalSamplerTest, MultipleSamplesStillExact) {
  const CsrGraph g = MakeWheel(10);
  OptimalSampler sampler(g, 17);
  const double exact = ExactBetweennessSingle(g, 0);
  EXPECT_NEAR(sampler.Estimate(0, 50), exact, 1e-9);
}

}  // namespace
}  // namespace mhbc
