#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>

#include "centrality/api.h"
#include "core/adaptive.h"
#include "datasets/registry.h"
#include "exact/brandes.h"
#include "graph/generators.h"
#include "graph/graph_io.h"

namespace mhbc {
namespace {

// Full-pipeline integration: generate -> serialize -> parse -> estimate,
// exercising the exact path a downstream user of the SNAP loader takes.

TEST(EndToEndTest, GenerateWriteLoadEstimateUnweighted) {
  const CsrGraph original = MakeConnectedCaveman(5, 10);
  std::ostringstream buffer;
  WriteEdgeList(original, buffer);
  std::istringstream input(buffer.str());
  const auto loaded = ParseEdgeList(input, {});
  ASSERT_TRUE(loaded.ok());
  // The writer emits vertices in dense id order, so ids survive round-trip
  // and per-vertex scores must match exactly.
  const VertexId gateway = 9;
  const double before = ExactBetweennessSingle(original, gateway);
  const double after = ExactBetweennessSingle(loaded.value(), gateway);
  EXPECT_NEAR(before, after, 1e-12);

  EstimateOptions options;
  options.kind = EstimatorKind::kMhRaoBlackwell;
  options.samples = 3'000;
  options.seed = 5;
  const auto estimate = EstimateBetweenness(loaded.value(), gateway, options);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(estimate.value().value, after, 0.1 * after);
}

TEST(EndToEndTest, GenerateWriteLoadEstimateWeighted) {
  const CsrGraph original =
      AssignUniformWeights(MakeGrid(10, 10), 0.5, 2.0, 0xE2E);
  std::ostringstream buffer;
  WriteEdgeList(original, buffer);
  std::istringstream input(buffer.str());
  EdgeListOptions load_options;
  load_options.allow_weights = true;
  const auto loaded = ParseEdgeList(input, load_options);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded.value().weighted());
  const VertexId center = 5 * 10 + 5;
  // Text round-trip quantizes weights through decimal printing; exact
  // scores may shift at tie boundaries, so compare with a tolerance.
  const double before = ExactBetweennessSingle(original, center);
  const double after = ExactBetweennessSingle(loaded.value(), center);
  EXPECT_NEAR(before, after, 0.05 * before + 1e-6);
}

TEST(EndToEndTest, RegistryDatasetThroughJointRanking) {
  const CsrGraph graph = std::move(MakeDataset("caveman-36")).value();
  // The four gateway vertices of the caveman ring.
  const std::vector<VertexId> gateways{8, 17, 26, 35};
  const auto order = RankByBetweenness(graph, gateways, 20'000, 0xE2E);
  ASSERT_TRUE(order.ok());
  // All four gateways are symmetric: any order is acceptable, but the call
  // must produce a complete permutation.
  std::vector<bool> seen(4, false);
  for (std::size_t idx : order.value()) {
    ASSERT_LT(idx, 4u);
    seen[idx] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(EndToEndTest, AdaptiveOnLoadedGraphMatchesChainLimit) {
  const CsrGraph graph = std::move(MakeDataset("caveman-36")).value();
  AdaptiveOptions options;
  options.seed = 0xADA;
  options.epsilon = 0.02;
  const AdaptiveResult result = AdaptiveMhEstimate(graph, /*gateway=*/8, options);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.estimate, 0.0);
  EXPECT_LT(result.estimate, 1.0);
}

TEST(EndToEndTest, TopKAgreesWithExactOnRegistryDataset) {
  const CsrGraph graph = std::move(MakeDataset("caveman-36")).value();
  const auto top = EstimateTopKBetweenness(graph, 4, 0.03, 0.1, 0x70F);
  ASSERT_TRUE(top.ok());
  const auto exact = ExactBetweenness(graph);
  // The caveman-36 top-4 are its four gateways; verify each returned
  // vertex is within 2 eps of its exact score and scores are sorted.
  double previous = 1.0;
  for (const TopKEntry& entry : top.value()) {
    EXPECT_NEAR(entry.estimate, exact[entry.vertex], 0.06);
    EXPECT_LE(entry.estimate, previous + 1e-12);
    previous = entry.estimate;
  }
}

}  // namespace
}  // namespace mhbc
