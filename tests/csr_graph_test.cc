#include "graph/csr_graph.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace mhbc {
namespace {

CsrGraph Triangle() {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  return std::move(b.Build()).value();
}

TEST(CsrGraphTest, EmptyGraph) {
  CsrGraph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_FALSE(g.weighted());
}

TEST(CsrGraphTest, TriangleBasics) {
  const CsrGraph g = Triangle();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  for (VertexId v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(CsrGraphTest, NeighborsSorted) {
  GraphBuilder b(4);
  b.AddEdge(2, 0);
  b.AddEdge(2, 3);
  b.AddEdge(2, 1);
  const CsrGraph g = std::move(b.Build()).value();
  const auto nbrs = g.neighbors(2);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 0u);
  EXPECT_EQ(nbrs[1], 1u);
  EXPECT_EQ(nbrs[2], 3u);
}

TEST(CsrGraphTest, HasEdgeSymmetric) {
  const CsrGraph g = Triangle();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  const CsrGraph g2 = std::move(b.Build()).value();
  EXPECT_FALSE(g2.HasEdge(0, 2));
  EXPECT_FALSE(g2.HasEdge(2, 1));
}

TEST(CsrGraphTest, UnweightedEdgeWeightIsOne) {
  const CsrGraph g = Triangle();
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 1.0);
  EXPECT_TRUE(g.weights(0).empty());
}

TEST(CsrGraphTest, WeightedEdges) {
  GraphBuilder b(3);
  b.AddWeightedEdge(0, 1, 2.5);
  b.AddWeightedEdge(1, 2, 0.5);
  const CsrGraph g = std::move(b.Build()).value();
  EXPECT_TRUE(g.weighted());
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 0), 2.5);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(2, 1), 0.5);
  ASSERT_EQ(g.weights(1).size(), 2u);
}

TEST(CsrGraphTest, CollectEdgesRoundTrip) {
  const CsrGraph g = MakeBarabasiAlbert(50, 2, 99);
  const auto edges = g.CollectEdges();
  EXPECT_EQ(edges.size(), g.num_edges());
  GraphBuilder b(g.num_vertices());
  for (const auto& e : edges) {
    EXPECT_LT(e.u, e.v);
    b.AddWeightedEdge(e.u, e.v, e.weight);
  }
  const CsrGraph g2 = std::move(b.Build()).value();
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.degree(v), g2.degree(v));
  }
}

TEST(CsrGraphTest, NamePropagation) {
  CsrGraph g = Triangle();
  g.set_name("tri");
  EXPECT_EQ(g.name(), "tri");
}

TEST(CsrGraphTest, IsolatedVertexHasNoNeighbors) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  const CsrGraph g = std::move(b.Build()).value();
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_TRUE(g.neighbors(2).empty());
}

}  // namespace
}  // namespace mhbc
