#include "sp/apsp_oracle.h"

#include <gtest/gtest.h>

#include <tuple>

#include "exact/brandes.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "sp/bfs_spd.h"
#include "sp/dijkstra_spd.h"

namespace mhbc {
namespace {

TEST(ApspOracleTest, PathDistancesAndCounts) {
  const ApspOracle oracle(MakePath(5));
  EXPECT_DOUBLE_EQ(oracle.Distance(0, 4), 4.0);
  EXPECT_DOUBLE_EQ(oracle.PathCount(0, 4), 1.0);
  EXPECT_DOUBLE_EQ(oracle.Distance(2, 2), 0.0);
  EXPECT_DOUBLE_EQ(oracle.PathCount(2, 2), 1.0);
}

TEST(ApspOracleTest, EvenCycleTies) {
  const ApspOracle oracle(MakeCycle(8));
  EXPECT_DOUBLE_EQ(oracle.Distance(0, 4), 4.0);
  EXPECT_DOUBLE_EQ(oracle.PathCount(0, 4), 2.0);
}

TEST(ApspOracleTest, DisconnectedNegativeDistanceZeroCount) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  const CsrGraph g = std::move(b.Build()).value();
  const ApspOracle oracle(g);
  EXPECT_LT(oracle.Distance(0, 3), 0.0);
  EXPECT_DOUBLE_EQ(oracle.PathCount(0, 3), 0.0);
}

TEST(ApspOracleTest, GridBinomialCounts) {
  const ApspOracle oracle(MakeGrid(4, 4));
  EXPECT_DOUBLE_EQ(oracle.PathCount(0, 15), 20.0);  // C(6,3)
}

/// Engine agreement sweep: BFS and Dijkstra engines must match the
/// independent Floyd-Warshall oracle on distances AND multiplicities.
class EngineAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {
 protected:
  CsrGraph MakeGraph() const {
    const auto [family, seed] = GetParam();
    switch (family) {
      case 0:
        return MakeErdosRenyiGnm(30, 70, seed);
      case 1:
        return MakeBarabasiAlbert(30, 2, seed);
      case 2:
        return AssignUniformWeights(MakeErdosRenyiGnm(25, 60, seed), 0.5,
                                    2.0, seed + 1);
      default:
        // Integer weights: exact FP ties exercise multiplicity handling.
        return AssignUniformWeights(MakeWattsStrogatz(24, 4, 0.3, seed), 1.0,
                                    1.0, seed);
    }
  }
};

TEST_P(EngineAgreementTest, EnginesMatchOracle) {
  const CsrGraph g = MakeGraph();
  const ApspOracle oracle(g);
  if (!g.weighted()) {
    BfsSpd engine(g);
    for (VertexId s = 0; s < g.num_vertices(); s += 3) {
      engine.Run(s);
      const auto& dag = engine.dag();
      for (VertexId t = 0; t < g.num_vertices(); ++t) {
        const double expected = oracle.Distance(s, t);
        if (expected < 0.0) {
          EXPECT_EQ(dag.dist[t], kUnreachedDistance);
          continue;
        }
        EXPECT_EQ(static_cast<double>(dag.dist[t]), expected);
        EXPECT_DOUBLE_EQ(static_cast<double>(dag.sigma[t]),
                         oracle.PathCount(s, t));
      }
    }
  } else {
    DijkstraSpd engine(g);
    for (VertexId s = 0; s < g.num_vertices(); s += 3) {
      engine.Run(s);
      const auto& dag = engine.dag();
      for (VertexId t = 0; t < g.num_vertices(); ++t) {
        const double expected = oracle.Distance(s, t);
        if (expected < 0.0) {
          EXPECT_LT(dag.wdist[t], 0.0);
          continue;
        }
        EXPECT_NEAR(dag.wdist[t], expected, 1e-9);
        EXPECT_NEAR(static_cast<double>(dag.sigma[t]),
                    oracle.PathCount(s, t), 1e-6);
      }
    }
  }
}

TEST_P(EngineAgreementTest, OraclePairDependenciesSumToBrandes) {
  const CsrGraph g = MakeGraph();
  const ApspOracle oracle(g);
  const auto exact = ExactBetweenness(g, Normalization::kNone);
  for (VertexId w = 0; w < g.num_vertices(); w += 7) {
    double total = 0.0;
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        if (u == v) continue;
        total += oracle.PairDependency(u, v, w);
      }
    }
    EXPECT_NEAR(total, exact[w], 1e-6) << "w=" << w;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, EngineAgreementTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values<std::uint64_t>(11, 12)));

}  // namespace
}  // namespace mhbc
