#include "sp/dependency.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/rng.h"

namespace mhbc {
namespace {

TEST(DependencyTest, PathSourceEndpoint) {
  // Path 0-1-2-3-4, source 0: delta_0(v) = #targets beyond v = 4-v... for
  // v=1: targets {2,3,4} -> 3; v=2: 2; v=3: 1; endpoints 0.
  const CsrGraph g = MakePath(5);
  BfsSpd bfs(g);
  bfs.Run(0);
  DependencyAccumulator acc(g);
  const auto& delta = acc.Accumulate(bfs);
  EXPECT_DOUBLE_EQ(delta[0], 0.0);
  EXPECT_DOUBLE_EQ(delta[1], 3.0);
  EXPECT_DOUBLE_EQ(delta[2], 2.0);
  EXPECT_DOUBLE_EQ(delta[3], 1.0);
  EXPECT_DOUBLE_EQ(delta[4], 0.0);
}

TEST(DependencyTest, StarCenterFromLeaf) {
  // Star with center 0, leaves 1..5; from leaf 1 every other leaf routes
  // through the center: delta_1(0) = 4.
  const CsrGraph g = MakeStar(6);
  BfsSpd bfs(g);
  bfs.Run(1);
  DependencyAccumulator acc(g);
  const auto& delta = acc.Accumulate(bfs);
  EXPECT_DOUBLE_EQ(delta[0], 4.0);
  for (VertexId v = 1; v < 6; ++v) EXPECT_DOUBLE_EQ(delta[v], 0.0);
}

TEST(DependencyTest, EvenCycleSplitDependency) {
  // C4 from 0: target 2 reachable via 1 or 3 (sigma=2), so delta_0(1) =
  // delta_0(3) = 1/2.
  const CsrGraph g = MakeCycle(4);
  BfsSpd bfs(g);
  bfs.Run(0);
  DependencyAccumulator acc(g);
  const auto& delta = acc.Accumulate(bfs);
  EXPECT_DOUBLE_EQ(delta[1], 0.5);
  EXPECT_DOUBLE_EQ(delta[3], 0.5);
  EXPECT_DOUBLE_EQ(delta[2], 0.0);
}

TEST(DependencyTest, RecursionMatchesPairDependencySum) {
  // The Brandes recursion (Eq. 4) must equal the explicit sum over targets
  // of pair dependencies (Eq. 2).
  Rng rng(4242);
  for (int trial = 0; trial < 4; ++trial) {
    const CsrGraph g = MakeErdosRenyiGnm(30, 60, 100 + trial);
    const VertexId s = rng.NextVertex(g.num_vertices());
    BfsSpd bfs(g);
    bfs.Run(s);
    DependencyAccumulator acc(g);
    const std::vector<double> delta = acc.Accumulate(bfs);

    std::vector<double> explicit_sum(g.num_vertices(), 0.0);
    for (VertexId t = 0; t < g.num_vertices(); ++t) {
      if (t == s) continue;
      const std::vector<double> pair = PairDependencies(g, s, t);
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        explicit_sum[v] += pair[v];
      }
    }
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_NEAR(delta[v], explicit_sum[v], 1e-9)
          << "seed " << trial << " vertex " << v;
    }
  }
}

TEST(DependencyTest, WeightedMatchesUnweightedOnUnitWeights) {
  const CsrGraph g = MakeGrid(4, 5);
  const CsrGraph wg = AssignUniformWeights(g, 1.0, 1.0, 7);
  BfsSpd bfs(g);
  DijkstraSpd dijkstra(wg);
  DependencyAccumulator acc_bfs(g);
  DependencyAccumulator acc_dij(wg);
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    bfs.Run(s);
    dijkstra.Run(s);
    const auto& d1 = acc_bfs.Accumulate(bfs);
    const auto& d2 = acc_dij.Accumulate(dijkstra);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_NEAR(d1[v], d2[v], 1e-9);
    }
  }
}

TEST(DependencyTest, SourceDependencyZero) {
  const CsrGraph g = MakeWheel(8);
  BfsSpd bfs(g);
  DependencyAccumulator acc(g);
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    bfs.Run(s);
    EXPECT_DOUBLE_EQ(acc.Accumulate(bfs)[s], 0.0);
  }
}

TEST(DependencyTest, TotalDependencyIdentity) {
  // sum_v delta_s(v) = sum_t (d(s,t) - 1) over reachable t != s: every
  // shortest path to t has d-1 interior vertices.
  const CsrGraph g = MakeBarabasiAlbert(80, 2, 9);
  BfsSpd bfs(g);
  DependencyAccumulator acc(g);
  for (VertexId s = 0; s < 10; ++s) {
    bfs.Run(s);
    const auto& delta = acc.Accumulate(bfs);
    double delta_total = 0.0;
    for (double d : delta) delta_total += d;
    double expected = 0.0;
    for (VertexId t = 0; t < g.num_vertices(); ++t) {
      if (t == s) continue;
      expected += static_cast<double>(bfs.dag().dist[t]) - 1.0;
    }
    EXPECT_NEAR(delta_total, expected, 1e-9);
  }
}

TEST(PairDependencyTest, PathInteriorOnes) {
  const CsrGraph g = MakePath(5);
  const std::vector<double> dep = PairDependencies(g, 0, 4);
  EXPECT_DOUBLE_EQ(dep[0], 0.0);
  EXPECT_DOUBLE_EQ(dep[1], 1.0);
  EXPECT_DOUBLE_EQ(dep[2], 1.0);
  EXPECT_DOUBLE_EQ(dep[3], 1.0);
  EXPECT_DOUBLE_EQ(dep[4], 0.0);
}

TEST(PairDependencyTest, SameVertexAllZero) {
  const CsrGraph g = MakePath(4);
  const std::vector<double> dep = PairDependencies(g, 2, 2);
  for (double d : dep) EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(CountPathsThroughTest, GridCorner) {
  const CsrGraph g = MakeGrid(3, 3);
  // Paths 0 -> 8 (C(4,2) = 6 total); through center 4: C(2,1)*C(2,1) = 4.
  EXPECT_EQ(CountPathsThrough(g, 0, 8, 4), 4u);
  // Through corner-adjacent 1: C(1,0)*... paths 0->1 (1) times 1->8 (3).
  EXPECT_EQ(CountPathsThrough(g, 0, 8, 1), 3u);
}

TEST(CountPathsThroughTest, OffPathVertexZero) {
  const CsrGraph g = MakePath(5);
  EXPECT_EQ(CountPathsThrough(g, 0, 2, 4), 0u);
}

}  // namespace
}  // namespace mhbc
