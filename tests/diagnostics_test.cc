#include "core/diagnostics.h"

#include <gtest/gtest.h>

namespace mhbc {
namespace {

TEST(DiagnosticsTest, AcceptanceRate) {
  ChainDiagnostics d;
  EXPECT_DOUBLE_EQ(d.acceptance_rate(), 0.0);
  d.accepted = 30;
  d.rejected = 70;
  EXPECT_DOUBLE_EQ(d.acceptance_rate(), 0.3);
}

TEST(AutocorrelationTest, ConstantSeriesIsZeroByConvention) {
  EXPECT_DOUBLE_EQ(Autocorrelation({1.0, 1.0, 1.0}, 1), 0.0);
}

TEST(AutocorrelationTest, AlternatingSeriesNegativeLag1) {
  const std::vector<double> series{1.0, -1.0, 1.0, -1.0, 1.0, -1.0};
  EXPECT_LT(Autocorrelation(series, 1), -0.5);
}

TEST(AutocorrelationTest, LagZeroIsOne) {
  const std::vector<double> series{1.0, 2.0, 3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(Autocorrelation(series, 0), 1.0);
}

TEST(AutocorrelationTest, OutOfRangeLagIsZero) {
  EXPECT_DOUBLE_EQ(Autocorrelation({1.0, 2.0}, 5), 0.0);
}

TEST(EffectiveSampleSizeTest, IidSeriesNearN) {
  // A strongly mixing (period-free pseudo-random) series: ESS close to n.
  std::vector<double> series;
  std::uint64_t state = 12345;
  for (int i = 0; i < 2000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    series.push_back(static_cast<double>(state >> 11) * 0x1.0p-53);
  }
  const double ess = EffectiveSampleSize(series);
  EXPECT_GT(ess, 1000.0);
  EXPECT_LE(ess, 2000.0 + 1e-9);
}

TEST(EffectiveSampleSizeTest, StickyChainMuchSmallerThanN) {
  // A chain that repeats each value 50 times has ~n/50 effective samples.
  std::vector<double> series;
  std::uint64_t state = 999;
  for (int block = 0; block < 40; ++block) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double value = static_cast<double>(state >> 11) * 0x1.0p-53;
    for (int k = 0; k < 50; ++k) series.push_back(value);
  }
  const double ess = EffectiveSampleSize(series);
  EXPECT_LT(ess, 200.0);
}

TEST(VisitCountsTest, CountsEachOccurrence) {
  const std::vector<VertexId> trace{0, 1, 1, 2, 0, 1};
  const auto counts = VisitCounts(trace, 4);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 3u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 0u);
}

}  // namespace
}  // namespace mhbc
