// Deadline + admission-control suite for the serving stack. The three
// contract points (docs/serving.md "Deadlines and admission"):
//   1. deadline_ms=0 is "expired on arrival" — rejected at admission with
//      the `deadline` class, never queued, never counted as admitted.
//   2. A deadline that fires mid-flight does NOT error: the response is
//      ok with partial reports flagged "kDeadline" (0 < samples_used <
//      requested), because partial statistics are still statistics.
//   3. A full admission queue rejects immediately with the `overload`
//      class — admission never blocks the client on a saturated server.
// The saturation tests are deterministic without sleeps: workers=1 and
// queue_capacity=1 make the server state machine small, and the
// queue-bypassing `stats` method (plus Server::Stats()) lets the test
// observe busy_workers/queue_depth transitions by polling, not timing.

#include <string>
#include <thread>

#include "datasets/registry.h"
#include "gtest/gtest.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace mhbc::serve {
namespace {

// Large enough that no machine finishes it inside any deadline used here
// (still under the protocol's samples field cap).
constexpr std::uint64_t kHugeSamples = 1u << 29;

std::string EstimateLine(std::uint64_t id, std::uint64_t samples,
                         double deadline_ms) {
  std::string line = "{\"id\": " + std::to_string(id) +
                     ", \"method\": \"estimate\", \"graph\": \"caveman-36\", "
                     "\"vertices\": [0], \"samples\": " +
                     std::to_string(samples);
  if (deadline_ms >= 0.0) {
    line += ", \"deadline_ms\": " + JsonDouble(deadline_ms);
  }
  return line + "}";
}

ServeResponse MustParse(const std::string& line) {
  auto response = ParseServeResponse(line);
  EXPECT_TRUE(response.ok()) << line;
  return response.ok() ? std::move(response).value() : ServeResponse{};
}

/// Polls Server::Stats() until `predicate` holds. No wall clock: the
/// bound is an iteration count, generous because a yield is ~free.
template <typename Predicate>
bool PollStats(Server& server, Predicate predicate) {
  for (long i = 0; i < 50'000'000L; ++i) {
    if (predicate(server.Stats())) return true;
    std::this_thread::yield();
  }
  return false;
}

class ServeDeadlineTest : public ::testing::Test {
 protected:
  void MakeServer(std::size_t workers, std::size_t queue_capacity) {
    auto graph = MakeDataset("caveman-36");
    ASSERT_TRUE(graph.ok());
    ASSERT_TRUE(catalog_
                    .AddGraph("caveman-36", std::move(graph).value(),
                              EngineOptions(), /*sessions=*/workers)
                    .ok());
    ServerOptions options;
    options.workers = workers;
    options.queue_capacity = queue_capacity;
    server_ = std::make_unique<Server>(&catalog_, options);
  }

  GraphCatalog catalog_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServeDeadlineTest, ExpiredOnArrivalIsRejectedAtAdmission) {
  MakeServer(/*workers=*/1, /*queue_capacity=*/4);
  const ServeResponse response =
      MustParse(server_->Call(EstimateLine(/*id=*/1, 100, /*deadline_ms=*/0)));
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error_class, ServeErrorClass::kDeadline);
  EXPECT_NE(response.message.find("expired on arrival"), std::string::npos)
      << response.message;
  EXPECT_TRUE(response.has_id);
  EXPECT_EQ(response.id, 1u);

  // Never admitted, counted as a deadline rejection.
  const ServerStats stats = server_->Stats();
  EXPECT_EQ(stats.admitted, 0u);
  EXPECT_EQ(stats.rejected_deadline, 1u);
  EXPECT_EQ(stats.rejected_overload, 0u);

  // The daemon keeps serving.
  const ServeResponse ok =
      MustParse(server_->Call(EstimateLine(/*id=*/2, 100, /*deadline_ms=*/-1)));
  EXPECT_TRUE(ok.ok);
}

TEST_F(ServeDeadlineTest, MidFlightDeadlineReturnsPartialFlaggedReports) {
  MakeServer(/*workers=*/1, /*queue_capacity=*/4);
  const ServeResponse response = MustParse(server_->Call(
      EstimateLine(/*id=*/7, kHugeSamples, /*deadline_ms=*/60.0)));
  // Partial results are a SUCCESS with a flag, not an error: the report
  // carries whatever statistics the budget bought.
  ASSERT_TRUE(response.ok) << response.message;
  ASSERT_EQ(response.reports.size(), 1u);
  const WireReport& report = response.reports[0];
  EXPECT_TRUE(report.deadline_flagged);
  EXPECT_GT(report.samples_used, 0u);
  EXPECT_LT(report.samples_used, kHugeSamples);
  // The flag travels on the wire as the documented string.
  const JsonValue* result = response.body.Find("result");
  ASSERT_NE(result, nullptr);
  const JsonValue* flag = result->Find("reports")->array.at(0).Find("flag");
  ASSERT_NE(flag, nullptr);
  EXPECT_EQ(flag->string_value, "kDeadline");
}

TEST_F(ServeDeadlineTest, GenerousDeadlineCompletesUnflagged) {
  MakeServer(/*workers=*/1, /*queue_capacity=*/4);
  const ServeResponse response = MustParse(server_->Call(
      EstimateLine(/*id=*/8, /*samples=*/200, /*deadline_ms=*/60'000.0)));
  ASSERT_TRUE(response.ok) << response.message;
  ASSERT_EQ(response.reports.size(), 1u);
  EXPECT_FALSE(response.reports[0].deadline_flagged);
  EXPECT_EQ(response.reports[0].samples_used, 200u);
}

TEST_F(ServeDeadlineTest, QueueExpiryAndOverloadOnSaturatedServer) {
  // One worker, one queue slot: occupy the worker, let a tight-deadline
  // request rot in the queue, and bounce a third off the full queue.
  MakeServer(/*workers=*/1, /*queue_capacity=*/1);

  std::string occupier_line;
  std::thread occupier([&] {
    // Holds the only worker for ~its whole deadline (the sample budget
    // is unreachable), then returns a flagged partial.
    occupier_line = server_->Call(
        EstimateLine(/*id=*/100, kHugeSamples, /*deadline_ms=*/400.0));
  });
  ASSERT_TRUE(PollStats(*server_, [](const ServerStats& stats) {
    return stats.busy_workers == 1;
  })) << "occupier never reached a worker";

  std::string queued_line;
  std::thread queued([&] {
    // Admitted into the queue (capacity 1) behind the occupier; its 1 ms
    // deadline expires long before the worker frees up, so it must come
    // back as a queue-expiry `deadline` error, not run.
    queued_line = server_->Call(
        EstimateLine(/*id=*/101, kHugeSamples, /*deadline_ms=*/1.0));
  });
  ASSERT_TRUE(PollStats(*server_, [](const ServerStats& stats) {
    return stats.queue_depth == 1;
  })) << "queued request never admitted";

  // Queue full -> immediate overload, while both others are in flight.
  const ServeResponse overload = MustParse(
      server_->Call(EstimateLine(/*id=*/102, 100, /*deadline_ms=*/-1)));
  EXPECT_FALSE(overload.ok);
  EXPECT_EQ(overload.error_class, ServeErrorClass::kOverload);
  EXPECT_NE(overload.message.find("admission queue full"), std::string::npos)
      << overload.message;
  EXPECT_EQ(overload.id, 102u);

  occupier.join();
  queued.join();

  const ServeResponse occupier_response = MustParse(occupier_line);
  ASSERT_TRUE(occupier_response.ok) << occupier_response.message;
  ASSERT_EQ(occupier_response.reports.size(), 1u);
  EXPECT_TRUE(occupier_response.reports[0].deadline_flagged);

  const ServeResponse queued_response = MustParse(queued_line);
  EXPECT_FALSE(queued_response.ok);
  EXPECT_EQ(queued_response.error_class, ServeErrorClass::kDeadline);
  EXPECT_NE(queued_response.message.find("in queue"), std::string::npos)
      << queued_response.message;

  // Responses are fulfilled just before the worker's own bookkeeping, so
  // poll for quiescence rather than asserting the instant after join.
  ASSERT_TRUE(PollStats(*server_, [](const ServerStats& stats) {
    return stats.busy_workers == 0 && stats.queue_depth == 0;
  }));
  const ServerStats stats = server_->Stats();
  EXPECT_EQ(stats.rejected_overload, 1u);
  EXPECT_GE(stats.rejected_deadline, 1u);  // the queue expiry
  EXPECT_EQ(stats.admitted, 2u);           // occupier + queued, not overload
}

TEST_F(ServeDeadlineTest, PriorityOrdersTheQueueUnderSaturation) {
  // One worker, room to queue: while the worker is occupied, enqueue a
  // low-priority then a high-priority request; the high one must run
  // first even though it was admitted second. Completion order is
  // observed through the server's completed counter snapshot each
  // response races to read... simpler: epochs can't order reads, so use
  // the mutate method — mutations are serialized by the catalog, and the
  // graph's edge count records which applied first.
  MakeServer(/*workers=*/1, /*queue_capacity=*/4);

  std::string occupier_line;
  std::thread occupier([&] {
    occupier_line = server_->Call(
        EstimateLine(/*id=*/200, kHugeSamples, /*deadline_ms=*/300.0));
  });
  ASSERT_TRUE(PollStats(*server_, [](const ServerStats& stats) {
    return stats.busy_workers == 1;
  }));

  // Low priority admitted first, high priority second.
  std::string low_line;
  std::string high_line;
  std::thread low([&] {
    low_line = server_->Call(
        R"({"id": 201, "method": "mutate", "graph": "caveman-36",)"
        R"( "edits": "addvertex", "priority": 0})");
  });
  ASSERT_TRUE(PollStats(*server_, [](const ServerStats& stats) {
    return stats.queue_depth == 1;
  }));
  std::thread high([&] {
    high_line = server_->Call(
        R"({"id": 202, "method": "mutate", "graph": "caveman-36",)"
        R"( "edits": "addvertex", "priority": 9})");
  });
  ASSERT_TRUE(PollStats(*server_, [](const ServerStats& stats) {
    return stats.queue_depth == 2;
  }));

  occupier.join();
  low.join();
  high.join();

  // Each mutate advanced the epoch once; the high-priority one must have
  // gone first, i.e. observed the earlier epoch.
  const ServeResponse low_response = MustParse(low_line);
  const ServeResponse high_response = MustParse(high_line);
  ASSERT_TRUE(low_response.ok) << low_response.message;
  ASSERT_TRUE(high_response.ok) << high_response.message;
  EXPECT_EQ(high_response.epoch, 1u);
  EXPECT_EQ(low_response.epoch, 2u);
}

}  // namespace
}  // namespace mhbc::serve
