#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace mhbc {
namespace {

TEST(SplitMix64Test, DeterministicSequence) {
  std::uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(SplitMix64(&s1), SplitMix64(&s2));
  }
}

TEST(SplitMix64Test, DistinctSeedsDiverge) {
  std::uint64_t s1 = 1, s2 = 2;
  EXPECT_NE(SplitMix64(&s1), SplitMix64(&s2));
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextBoundedApproximatelyUniform) {
  Rng rng(13);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / static_cast<int>(kBuckets), 600);
  }
}

TEST(RngTest, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(19);
  double sum = 0.0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(RngTest, NextInRangeInclusiveBounds) {
  Rng rng(23);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t x = rng.NextInRange(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(29);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(31);
  int hits = 0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(37);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(43);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{5};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{5});
}

TEST(RngTest, ForkDivergesFromParent) {
  Rng parent(47);
  Rng child = parent.Fork(0);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.NextU64() == child.NextU64());
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ForkLabelsDiffer) {
  Rng p1(51), p2(51);
  Rng c1 = p1.Fork(1);
  Rng c2 = p2.Fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (c1.NextU64() == c2.NextU64());
  EXPECT_EQ(same, 0);
}

TEST(SampleDiscreteTest, SingletonAlwaysChosen) {
  Rng rng(53);
  std::vector<double> w{3.0};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(SampleDiscrete(w, &rng), 0u);
}

TEST(SampleDiscreteTest, ZeroWeightNeverChosen) {
  Rng rng(59);
  std::vector<double> w{0.0, 1.0, 0.0, 2.0};
  for (int i = 0; i < 1000; ++i) {
    const std::size_t pick = SampleDiscrete(w, &rng);
    EXPECT_TRUE(pick == 1 || pick == 3);
  }
}

TEST(SampleDiscreteTest, ProportionsRoughlyRespected) {
  Rng rng(61);
  std::vector<double> w{1.0, 3.0};
  int ones = 0;
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) ones += (SampleDiscrete(w, &rng) == 1);
  EXPECT_NEAR(static_cast<double>(ones) / kDraws, 0.75, 0.02);
}

TEST(DiscreteSamplerTest, ProbabilityMatchesWeights) {
  DiscreteSampler sampler({1.0, 2.0, 0.0, 1.0});
  EXPECT_DOUBLE_EQ(sampler.Probability(0), 0.25);
  EXPECT_DOUBLE_EQ(sampler.Probability(1), 0.5);
  EXPECT_DOUBLE_EQ(sampler.Probability(2), 0.0);
  EXPECT_DOUBLE_EQ(sampler.Probability(3), 0.25);
}

TEST(DiscreteSamplerTest, ZeroWeightIndexNeverSampled) {
  DiscreteSampler sampler({1.0, 0.0, 1.0});
  Rng rng(67);
  for (int i = 0; i < 2000; ++i) EXPECT_NE(sampler.Sample(&rng), 1u);
}

TEST(DiscreteSamplerTest, EmpiricalFrequenciesTrackProbabilities) {
  DiscreteSampler sampler({2.0, 5.0, 3.0});
  Rng rng(71);
  std::vector<int> counts(3, 0);
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.Sample(&rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.2, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.5, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kDraws), 0.3, 0.01);
}

}  // namespace
}  // namespace mhbc
