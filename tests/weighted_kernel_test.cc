#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "centrality/engine.h"
#include "exact/dependency_oracle.h"
#include "graph/dynamic_graph.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "sp/delta_spd.h"
#include "sp/dependency.h"
#include "sp/dijkstra_spd.h"

// Property, determinism, and invalidation tests for the canonical-wave
// delta-stepping weighted SPD kernel (sp/delta_spd.h):
//
//   * value equivalence against the Dijkstra reference engine (same
//     distances, path counts, predecessor sets, and dependency values —
//     the settle orders differ by design),
//   * bit-identity of the wave-parallel kernel against its sequential
//     self at 2 and 4 threads, under bucket-width and grain sweeps (both
//     are speed knobs, never result knobs),
//   * the selective weighted invalidation criterion in DependencyOracle
//     (slack both ways + the min-incident-weight gate), unit-cased and
//     swept against cold engines over random edit scripts.

namespace mhbc {
namespace {

/// Random positive-weight graph zoo: the generator families the
/// unweighted kernel tests sweep, with uniform [1,3] weights (distinct
/// seeds so families do not share weight streams).
std::vector<CsrGraph> WeightedZoo() {
  std::vector<CsrGraph> graphs;
  graphs.push_back(
      AssignUniformWeights(MakeBarabasiAlbert(300, 3, 0xE24), 1.0, 3.0, 0x1));
  graphs.push_back(
      AssignUniformWeights(MakeErdosRenyiGnm(250, 750, 0xE24), 1.0, 3.0, 0x2));
  graphs.push_back(AssignUniformWeights(MakeErdosRenyiGnp(200, 0.008, 0xE24),
                                        1.0, 3.0, 0x3));  // disconnected-ish
  graphs.push_back(AssignUniformWeights(MakeWattsStrogatz(250, 6, 0.1, 0xE24),
                                        1.0, 3.0, 0x4));
  graphs.push_back(
      AssignUniformWeights(MakeConnectedCaveman(7, 10), 1.0, 3.0, 0x5));
  graphs.push_back(AssignUniformWeights(MakeGrid(13, 13), 1.0, 3.0, 0x6));
  graphs.push_back(AssignUniformWeights(MakeStar(48), 1.0, 3.0, 0x7));
  graphs.push_back(
      AssignUniformWeights(MakeCompleteBipartite(7, 13), 1.0, 3.0, 0x8));
  return graphs;
}

SpdOptions WithThreads(unsigned threads, std::uint64_t grain = 0) {
  SpdOptions options;
  options.num_threads = threads;
  // grain 0 forces every wave through the parallel path, so small test
  // graphs actually exercise the sharded steps.
  options.parallel_grain = grain;
  return options;
}

bool NearlyEqual(double a, double b, double rel = 1e-9) {
  return a == b ||
         std::fabs(a - b) <= rel * std::max(std::fabs(a), std::fabs(b));
}

void ExpectDagsIdentical(const ShortestPathDag& a, const ShortestPathDag& b) {
  ASSERT_EQ(a.source, b.source);
  EXPECT_EQ(a.wdist, b.wdist);
  EXPECT_EQ(a.sigma, b.sigma);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.level_offsets, b.level_offsets);
}

void ExpectPredsIdentical(const ShortestPathDag& a,
                          const ShortestPathDag& b) {
  ASSERT_EQ(a.has_predecessors, b.has_predecessors);
  for (VertexId v : a.order) {
    const auto pa = a.predecessors(v);
    const auto pb = b.predecessors(v);
    ASSERT_EQ(pa.size(), pb.size()) << "vertex " << v;
    EXPECT_TRUE(std::equal(pa.begin(), pa.end(), pb.begin())) << "vertex "
                                                              << v;
  }
}

// ------------------------------------- value equivalence vs Dijkstra

TEST(WeightedKernelTest, MatchesDijkstraValuesOnWeightedZoo) {
  // DeltaSpd and DijkstraSpd settle in different orders, so only the
  // *values* must agree: distances (near-equal — tie-adjacent sums may
  // round differently along different relaxation orders), path counts
  // (exact — small-graph sigmas are exactly representable), predecessor
  // sets (as sets), and dependency values (near-equal — the fold order
  // over a vertex's SPD children differs with the settle order).
  for (const CsrGraph& g : WeightedZoo()) {
    DeltaSpd delta(g, SpdOptions());
    DijkstraSpd dijkstra(g);
    DependencyAccumulator delta_acc(g);
    DependencyAccumulator dijkstra_acc(g);
    const VertexId step = std::max<VertexId>(1, g.num_vertices() / 7);
    for (VertexId s = 0; s < g.num_vertices(); s += step) {
      SCOPED_TRACE("n=" + std::to_string(g.num_vertices()) +
                   " source=" + std::to_string(s));
      delta.Run(s);
      dijkstra.Run(s);
      const ShortestPathDag& a = delta.dag();
      const ShortestPathDag& b = dijkstra.dag();
      ASSERT_EQ(a.order.size(), b.order.size());
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        EXPECT_TRUE(NearlyEqual(a.wdist[v], b.wdist[v]))
            << "v=" << v << " delta=" << a.wdist[v] << " dij=" << b.wdist[v];
        EXPECT_EQ(a.sigma[v], b.sigma[v]) << "v=" << v;
      }
      for (VertexId v : a.order) {
        std::vector<VertexId> pa(a.predecessors(v).begin(),
                                 a.predecessors(v).end());
        std::vector<VertexId> pb(b.predecessors(v).begin(),
                                 b.predecessors(v).end());
        std::sort(pa.begin(), pa.end());
        std::sort(pb.begin(), pb.end());
        EXPECT_EQ(pa, pb) << "vertex " << v;
      }
      const std::vector<double> da = delta_acc.Accumulate(delta);
      const std::vector<double>& db = dijkstra_acc.Accumulate(b, g);
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        EXPECT_TRUE(NearlyEqual(da[v], db[v], 1e-8))
            << "v=" << v << " delta=" << da[v] << " dij=" << db[v];
      }
    }
  }
}

// ------------------------------------- wave structure

TEST(WeightedKernelTest, WavesAreTopologicalLevelsInCanonicalOrder) {
  // Every recorded SPD edge must cross strictly backward in wave index
  // (waves are topological levels — the property the fused level-parallel
  // dependency sweep relies on), and within each wave the canonical order
  // is ascending (wdist, id).
  const CsrGraph g =
      AssignUniformWeights(MakeBarabasiAlbert(400, 3, 0x51), 1.0, 3.0, 0x9);
  DeltaSpd delta(g, SpdOptions());
  delta.Run(17);
  const ShortestPathDag& dag = delta.dag();
  ASSERT_TRUE(dag.has_predecessors);
  ASSERT_GE(dag.num_levels(), 2u);
  ASSERT_EQ(dag.level_offsets.back(), dag.order.size());
  std::vector<std::size_t> wave_of(g.num_vertices(), 0);
  for (std::size_t l = 0; l < dag.num_levels(); ++l) {
    for (std::size_t i = dag.level_offsets[l]; i < dag.level_offsets[l + 1];
         ++i) {
      wave_of[dag.order[i]] = l;
      if (i > dag.level_offsets[l]) {
        const VertexId prev = dag.order[i - 1];
        const VertexId cur = dag.order[i];
        EXPECT_TRUE(dag.wdist[prev] < dag.wdist[cur] ||
                    (dag.wdist[prev] == dag.wdist[cur] && prev < cur))
            << "wave " << l << " position " << i;
      }
    }
  }
  for (VertexId v : dag.order) {
    for (VertexId u : dag.predecessors(v)) {
      EXPECT_LT(wave_of[u], wave_of[v]) << "SPD edge " << u << "->" << v;
    }
  }
}

// ------------------------------------- parallel bit-identity

TEST(WeightedKernelTest, ParallelMatchesSequentialOnWeightedZoo) {
  // The tentpole determinism sweep: 2 and 4 wave-parallel threads, grain 0
  // (every wave fans out) — wdist/sigma/order/waves, predecessor lists,
  // and dependency vectors must be bit-identical to the sequential kernel
  // on every graph family.
  for (const CsrGraph& g : WeightedZoo()) {
    DeltaSpd sequential(g, SpdOptions());
    DependencyAccumulator sequential_acc(g);
    for (unsigned threads : {2u, 4u}) {
      DeltaSpd parallel(g, WithThreads(threads));
      DependencyAccumulator parallel_acc(g, parallel.intra_pool(),
                                         /*parallel_grain=*/0);
      const VertexId step = std::max<VertexId>(1, g.num_vertices() / 5);
      for (VertexId s = 0; s < g.num_vertices(); s += step) {
        SCOPED_TRACE("n=" + std::to_string(g.num_vertices()) + " threads=" +
                     std::to_string(threads) + " source=" +
                     std::to_string(s));
        sequential.Run(s);
        parallel.Run(s);
        ExpectDagsIdentical(sequential.dag(), parallel.dag());
        ExpectPredsIdentical(sequential.dag(), parallel.dag());
        const std::vector<double> baseline =
            sequential_acc.Accumulate(sequential);
        const std::vector<double>& deltas = parallel_acc.Accumulate(parallel);
        ASSERT_EQ(deltas, baseline);
      }
    }
  }
}

TEST(WeightedKernelTest, BucketWidthOnlyChangesWorkNeverResults) {
  // The canonical wave rule is Δ-invariant: the bucket width organizes the
  // scan but never decides wave membership, so every width must reproduce
  // the auto-width DAG bit for bit — sequential and at 4 threads.
  const CsrGraph g =
      AssignUniformWeights(MakeErdosRenyiGnm(220, 700, 0x43), 1.0, 3.0, 0xA);
  DeltaSpd baseline(g, SpdOptions());
  for (double width : {0.05, 0.9, 2.7, 40.0}) {
    for (unsigned threads : {1u, 4u}) {
      SpdOptions options = WithThreads(threads);
      options.delta_width = width;
      DeltaSpd swept(g, options);
      for (VertexId s : {VertexId{0}, VertexId{110}, VertexId{219}}) {
        SCOPED_TRACE("width=" + std::to_string(width) + " threads=" +
                     std::to_string(threads) + " source=" +
                     std::to_string(s));
        baseline.Run(s);
        swept.Run(s);
        ExpectDagsIdentical(baseline.dag(), swept.dag());
        ExpectPredsIdentical(baseline.dag(), swept.dag());
      }
    }
  }
}

TEST(WeightedKernelTest, ParallelGrainOnlyChangesWorkNeverResults) {
  // Sweeping the grain moves waves between the sequential and parallel
  // relaxation paths; every setting must agree bit-for-bit.
  const CsrGraph g =
      AssignUniformWeights(MakeBarabasiAlbert(300, 3, 0x61), 1.0, 3.0, 0xB);
  DeltaSpd baseline(g, SpdOptions());
  for (std::uint64_t grain : {std::uint64_t{0}, std::uint64_t{64},
                              std::uint64_t{100000}}) {
    DeltaSpd swept(g, WithThreads(4, grain));
    for (VertexId s : {VertexId{0}, VertexId{150}}) {
      SCOPED_TRACE("grain=" + std::to_string(grain) + " source=" +
                   std::to_string(s));
      baseline.Run(s);
      swept.Run(s);
      ExpectDagsIdentical(baseline.dag(), swept.dag());
      ExpectPredsIdentical(baseline.dag(), swept.dag());
    }
  }
}

TEST(WeightedKernelTest, ShardMergeEdgeCaseTopologies) {
  // Wave shapes that stress the shard merge: single-vertex waves (path),
  // one giant wave behind a hub (star), wide diagonal waves (grid), and a
  // tiny graph where most shards and ranges are empty.
  std::vector<CsrGraph> graphs;
  graphs.push_back(AssignUniformWeights(MakePath(70), 1.0, 3.0, 0xC));
  graphs.push_back(AssignUniformWeights(MakeStar(130), 1.0, 3.0, 0xD));
  graphs.push_back(AssignUniformWeights(MakeGrid(11, 17), 1.0, 3.0, 0xE));
  graphs.push_back(AssignUniformWeights(MakeCycle(3), 1.0, 3.0, 0xF));
  for (const CsrGraph& g : graphs) {
    DeltaSpd sequential(g, SpdOptions());
    for (unsigned threads : {1u, 2u, 4u}) {
      DeltaSpd parallel(g, WithThreads(threads));
      for (VertexId s :
           {VertexId{0}, static_cast<VertexId>(g.num_vertices() / 2),
            static_cast<VertexId>(g.num_vertices() - 1)}) {
        SCOPED_TRACE("n=" + std::to_string(g.num_vertices()) + " threads=" +
                     std::to_string(threads) + " source=" +
                     std::to_string(s));
        sequential.Run(s);
        parallel.Run(s);
        ExpectDagsIdentical(sequential.dag(), parallel.dag());
        ExpectPredsIdentical(sequential.dag(), parallel.dag());
      }
    }
  }
}

TEST(WeightedKernelTest, ReuseAcrossSourcesResetsState) {
  // Engine reuse with the parallel scratch in play: alternating sources
  // must reproduce fresh-engine passes exactly (the lazy reset covers
  // wdist/sigma/buckets/preds).
  const CsrGraph g =
      AssignUniformWeights(MakeErdosRenyiGnm(200, 600, 0x42), 1.0, 3.0, 0x10);
  DeltaSpd reused(g, WithThreads(4));
  for (VertexId s : {VertexId{0}, VertexId{150}, VertexId{3}, VertexId{0}}) {
    reused.Run(s);
    DeltaSpd fresh(g, SpdOptions());
    fresh.Run(s);
    ExpectDagsIdentical(reused.dag(), fresh.dag());
    ExpectPredsIdentical(reused.dag(), fresh.dag());
  }
}

TEST(WeightedKernelTest, ZeroThreadsStandaloneIsSequential) {
  // num_threads == 0 means "inherit"; standalone engines have nothing to
  // inherit from and must stay sequential (no pool).
  const CsrGraph g = AssignUniformWeights(MakePath(10), 1.0, 3.0, 0x11);
  DeltaSpd inherit(g, SpdOptions());
  EXPECT_EQ(inherit.intra_pool(), nullptr);
  DeltaSpd one(g, WithThreads(1));
  EXPECT_EQ(one.intra_pool(), nullptr);
  DeltaSpd two(g, WithThreads(2));
  EXPECT_NE(two.intra_pool(), nullptr);
}

TEST(WeightedKernelTest, StatsAccumulateAcrossRuns) {
  const CsrGraph g =
      AssignUniformWeights(MakeBarabasiAlbert(200, 3, 0x31), 1.0, 3.0, 0x12);
  DeltaSpd spd(g, SpdOptions());
  spd.Run(0);
  const std::uint64_t first = spd.last_stats().edges_examined;
  EXPECT_GT(first, 0u);
  EXPECT_GT(spd.last_stats().waves, 0u);
  EXPECT_EQ(spd.total_stats().edges_examined, first);
  spd.Run(1);
  EXPECT_EQ(spd.total_stats().edges_examined,
            first + spd.last_stats().edges_examined);
}

// ------------------------------------- option validation

TEST(WeightedKernelDeathTest, RejectsNegativeTieEpsilon) {
  const CsrGraph g = AssignUniformWeights(MakePath(4), 1.0, 3.0, 0x13);
  SpdOptions options;
  options.tie_epsilon = -1e-9;
  EXPECT_DEATH({ DeltaSpd spd(g, options); }, "tie_epsilon");
  EXPECT_DEATH({ DijkstraSpd spd(g, -1e-9); }, "tie_epsilon");
}

TEST(WeightedKernelDeathTest, RejectsNegativeDeltaWidth) {
  const CsrGraph g = AssignUniformWeights(MakePath(4), 1.0, 3.0, 0x14);
  SpdOptions options;
  options.delta_width = -0.5;
  EXPECT_DEATH({ DeltaSpd spd(g, options); }, "delta_width");
}

// ------------------------------------- selective weighted invalidation

/// Weighted path 0-1-2-3-4-5, all weights 2 (a uniform 1.0 would make the
/// builder emit an *unweighted* graph): wdist from 0 is 2v.
CsrGraph WeightedPath6() {
  GraphBuilder builder(6);
  for (VertexId v = 0; v + 1 < 6; ++v) {
    builder.AddWeightedEdge(v, v + 1, 2.0);
  }
  return std::move(builder.Build()).value();
}

/// The post-edit graph: `base` plus one extra weighted edge.
CsrGraph WithExtraEdge(const CsrGraph& base, VertexId u, VertexId v,
                       double w) {
  GraphBuilder builder(base.num_vertices());
  for (const CsrGraph::Edge& edge : base.CollectEdges()) {
    builder.AddWeightedEdge(edge.u, edge.v, edge.weight);
  }
  builder.AddWeightedEdge(u, v, w);
  return std::move(builder.Build()).value();
}

TEST(WeightedInvalidationTest, SlackEditKeepsCachedPasses) {
  // Adding {0,5} with weight 25 has slack both ways (0+25 > 10,
  // 10+25 > 0) and passes the min-incident-weight gate (25 >= 2), so the
  // memoized pass from source 0 must survive — and still match a cold
  // oracle on the post-edit graph bit for bit.
  const CsrGraph before = WeightedPath6();
  DependencyOracle oracle(before);
  oracle.set_cache_capacity(8);
  oracle.Dependencies(0);
  ASSERT_EQ(oracle.cached_entries(), 1u);

  const CsrGraph after = WithExtraEdge(before, 0, 5, 25.0);
  const std::vector<GraphEdit> edits{
      {GraphEdit::Kind::kAddEdge, 0, 5, 25.0}};
  oracle.ApplyGraphDelta(after, edits);
  EXPECT_EQ(oracle.cached_entries(), 1u);
  EXPECT_EQ(oracle.invalidated_entries(), 0u);

  const std::uint64_t hits_before = oracle.cache_hits();
  const std::vector<double> served = oracle.Dependencies(0);
  EXPECT_EQ(oracle.cache_hits(), hits_before + 1);
  DependencyOracle cold(after);
  EXPECT_EQ(served, cold.Dependencies(0));
}

TEST(WeightedInvalidationTest, ShortcutEditDropsAffectedPass) {
  // Adding {0,5} with weight 3 beats the cached distance (0+3 < 10): the
  // pass must be dropped and recomputed correctly.
  const CsrGraph before = WeightedPath6();
  DependencyOracle oracle(before);
  oracle.set_cache_capacity(8);
  oracle.Dependencies(0);

  const CsrGraph after = WithExtraEdge(before, 0, 5, 3.0);
  const std::vector<GraphEdit> edits{{GraphEdit::Kind::kAddEdge, 0, 5, 3.0}};
  oracle.ApplyGraphDelta(after, edits);
  EXPECT_EQ(oracle.cached_entries(), 0u);
  EXPECT_EQ(oracle.invalidated_entries(), 1u);

  DependencyOracle cold(after);
  EXPECT_EQ(oracle.Dependencies(0), cold.Dependencies(0));
}

TEST(WeightedInvalidationTest, MinIncidentWeightGateIsConservative) {
  // Y graph: 0-1 and 0-2, both weight 2. Adding {1,2} with weight 0.5 has
  // slack both ways (2+0.5 > 2), but the new edge undercuts both
  // endpoints' min incident weight — which can change wave geometry — so
  // the gate must drop the pass even though the DAG happens to survive.
  GraphBuilder builder(3);
  builder.AddWeightedEdge(0, 1, 2.0);
  builder.AddWeightedEdge(0, 2, 2.0);
  const CsrGraph before = std::move(builder.Build()).value();
  DependencyOracle oracle(before);
  oracle.set_cache_capacity(8);
  oracle.Dependencies(0);

  const CsrGraph after = WithExtraEdge(before, 1, 2, 0.5);
  const std::vector<GraphEdit> edits{{GraphEdit::Kind::kAddEdge, 1, 2, 0.5}};
  oracle.ApplyGraphDelta(after, edits);
  EXPECT_EQ(oracle.invalidated_entries(), 1u);
  DependencyOracle cold(after);
  EXPECT_EQ(oracle.Dependencies(0), cold.Dependencies(0));
}

TEST(WeightedInvalidationTest, OffPathRemovalKeepsCachedPasses) {
  // Square 0-1 (1.0), 1-3 (1.0), 0-2 (1.5), 2-3 (1.6): from 0 the edge
  // {2,3} is on no shortest path, has slack both ways, and its weight
  // strictly exceeds both endpoints' min incident weight after removal —
  // the cached pass survives.
  GraphBuilder builder(4);
  builder.AddWeightedEdge(0, 1, 1.0);
  builder.AddWeightedEdge(1, 3, 1.0);
  builder.AddWeightedEdge(0, 2, 1.5);
  builder.AddWeightedEdge(2, 3, 1.6);
  const CsrGraph before = std::move(builder.Build()).value();
  DependencyOracle oracle(before);
  oracle.set_cache_capacity(8);
  oracle.Dependencies(0);

  GraphBuilder rebuilt(4);
  rebuilt.AddWeightedEdge(0, 1, 1.0);
  rebuilt.AddWeightedEdge(1, 3, 1.0);
  rebuilt.AddWeightedEdge(0, 2, 1.5);
  const CsrGraph after = std::move(rebuilt.Build()).value();
  const std::vector<GraphEdit> edits{
      {GraphEdit::Kind::kRemoveEdge, 2, 3, 1.6}};
  oracle.ApplyGraphDelta(after, edits);
  EXPECT_EQ(oracle.cached_entries(), 1u);
  EXPECT_EQ(oracle.invalidated_entries(), 0u);
  DependencyOracle cold(after);
  EXPECT_EQ(oracle.Dependencies(0), cold.Dependencies(0));
}

TEST(WeightedInvalidationTest, RandomEditScriptsMatchColdOracle) {
  // The lockdown: for random weighted graphs × random edit scripts, every
  // post-delta Dependencies(source) must be bit-identical to a cold
  // oracle on the scratch-rebuilt graph, whether the memo survived or
  // was recomputed.
  DynamicGraph dynamic(
      AssignUniformWeights(MakeConnectedCaveman(5, 8), 1.0, 3.0, 0x15));
  DependencyOracle oracle(dynamic.Csr());
  oracle.set_cache_capacity(64);
  for (int script = 0; script < 20; ++script) {
    // Warm a few memos on the current graph.
    const VertexId n = oracle.graph().num_vertices();
    for (VertexId s : {VertexId{0}, static_cast<VertexId>(n / 2),
                       static_cast<VertexId>(n - 1)}) {
      oracle.Dependencies(s);
    }
    const GraphDelta delta = MakeRandomEditScript(
        dynamic.Csr(), 3, 0xABC + static_cast<std::uint64_t>(script) * 97);
    std::vector<GraphEdit> resolved;
    const Status applied = dynamic.Apply(delta, &resolved);
    ASSERT_TRUE(applied.ok()) << applied.ToString();
    oracle.ApplyGraphDelta(dynamic.Csr(), resolved);

    DependencyOracle cold(dynamic.Csr());
    const VertexId m = dynamic.Csr().num_vertices();
    for (VertexId s : {VertexId{0}, static_cast<VertexId>(m / 2),
                       static_cast<VertexId>(m - 1)}) {
      SCOPED_TRACE("script " + std::to_string(script) + " source " +
                   std::to_string(s));
      EXPECT_EQ(oracle.Dependencies(s), cold.Dependencies(s));
    }
  }
}

// ------------------------------------- engine-level equivalence

void ExpectReportsIdentical(const EstimateReport& a, const EstimateReport& b,
                            const std::string& where) {
  EXPECT_EQ(a.value, b.value) << where;
  EXPECT_EQ(a.samples_used, b.samples_used) << where;
  EXPECT_EQ(a.acceptance_rate, b.acceptance_rate) << where;
  EXPECT_EQ(a.ess, b.ess) << where;
  EXPECT_EQ(a.std_error, b.std_error) << where;
  EXPECT_EQ(a.ci_half_width, b.ci_half_width) << where;
  EXPECT_EQ(a.converged, b.converged) << where;
}

/// Scratch rebuild of `graph` through the ordinary construction path.
CsrGraph RebuildFromEdges(const CsrGraph& graph) {
  GraphBuilder builder(graph.num_vertices());
  for (const CsrGraph::Edge& edge : graph.CollectEdges()) {
    builder.AddWeightedEdge(edge.u, edge.v, edge.weight);
  }
  return std::move(builder.Build()).value();
}

void RunWeightedEquivalenceSweep(unsigned num_threads,
                                 std::uint64_t seed_base, int num_scripts) {
  EngineOptions options;
  options.num_threads = num_threads;

  const CsrGraph start =
      AssignUniformWeights(MakeConnectedCaveman(5, 8), 1.0, 3.0, 0x16);
  BetweennessEngine incremental(start, options);

  EstimateRequest request;
  request.kind = EstimatorKind::kMetropolisHastings;
  request.samples = 100;
  request.seed = 0xD11A + seed_base;

  for (int script = 0; script < num_scripts; ++script) {
    const std::uint64_t seed = seed_base * 1'000 + script;
    const GraphDelta delta =
        MakeRandomEditScript(incremental.graph(), 4, seed);
    ASSERT_TRUE(incremental.ApplyDelta(delta).ok());

    const CsrGraph scratch = RebuildFromEdges(incremental.graph());
    BetweennessEngine cold(scratch, options);
    const VertexId n = scratch.num_vertices();
    const std::vector<VertexId> targets{
        static_cast<VertexId>(seed % n),
        static_cast<VertexId>((seed / 7) % n)};
    const auto warm_reports = incremental.EstimateMany(targets, request);
    const auto cold_reports = cold.EstimateMany(targets, request);
    ASSERT_TRUE(warm_reports.ok()) << warm_reports.status().ToString();
    ASSERT_TRUE(cold_reports.ok()) << cold_reports.status().ToString();
    for (std::size_t i = 0; i < targets.size(); ++i) {
      ExpectReportsIdentical(warm_reports.value()[i], cold_reports.value()[i],
                             "script " + std::to_string(script) + " target " +
                                 std::to_string(targets[i]) + " threads " +
                                 std::to_string(num_threads));
    }
  }
}

TEST(WeightedEquivalenceTest, Threads1) {
  RunWeightedEquivalenceSweep(1, 1, 12);
}
TEST(WeightedEquivalenceTest, Threads2) {
  RunWeightedEquivalenceSweep(2, 2, 12);
}
TEST(WeightedEquivalenceTest, Threads4) {
  RunWeightedEquivalenceSweep(4, 3, 12);
}

}  // namespace
}  // namespace mhbc
