#include "sp/dijkstra_spd.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace mhbc {
namespace {

CsrGraph WeightedDiamond() {
  // 0 -> {1, 2} -> 3 with symmetric weights: two tied shortest 0-3 paths.
  GraphBuilder b(4);
  b.AddWeightedEdge(0, 1, 1.0);
  b.AddWeightedEdge(0, 2, 1.0);
  b.AddWeightedEdge(1, 3, 2.0);
  b.AddWeightedEdge(2, 3, 2.0);
  return std::move(b.Build()).value();
}

TEST(DijkstraSpdTest, DiamondTiedPaths) {
  const CsrGraph g = WeightedDiamond();
  DijkstraSpd engine(g);
  engine.Run(0);
  const auto& dag = engine.dag();
  EXPECT_DOUBLE_EQ(dag.wdist[3], 3.0);
  EXPECT_EQ(dag.sigma[3], 2u);
  EXPECT_EQ(engine.predecessors(3).size(), 2u);
  EXPECT_EQ(dag.sigma[1], 1u);
  EXPECT_EQ(engine.predecessors(1).size(), 1u);
  EXPECT_EQ(engine.predecessors(1)[0], 0u);
}

TEST(DijkstraSpdTest, WeightBreaksTie) {
  GraphBuilder b(4);
  b.AddWeightedEdge(0, 1, 1.0);
  b.AddWeightedEdge(0, 2, 1.0);
  b.AddWeightedEdge(1, 3, 2.0);
  b.AddWeightedEdge(2, 3, 2.5);  // now the path via 1 is strictly shorter
  const CsrGraph g = std::move(b.Build()).value();
  DijkstraSpd engine(g);
  engine.Run(0);
  EXPECT_DOUBLE_EQ(engine.dag().wdist[3], 3.0);
  EXPECT_EQ(engine.dag().sigma[3], 1u);
  ASSERT_EQ(engine.predecessors(3).size(), 1u);
  EXPECT_EQ(engine.predecessors(3)[0], 1u);
}

TEST(DijkstraSpdTest, UnitWeightsMatchBfsSigma) {
  const CsrGraph g = MakeGrid(5, 5);  // unweighted: Dijkstra treats w = 1
  DijkstraSpd engine(g);
  engine.Run(0);
  const auto& dag = engine.dag();
  EXPECT_DOUBLE_EQ(dag.wdist[24], 8.0);
  EXPECT_EQ(dag.sigma[24], 70u);  // C(8,4)
}

TEST(DijkstraSpdTest, ShortcutThroughManyLightEdges) {
  // Path of light edges beats one heavy direct edge.
  GraphBuilder b(4);
  b.AddWeightedEdge(0, 3, 10.0);
  b.AddWeightedEdge(0, 1, 1.0);
  b.AddWeightedEdge(1, 2, 1.0);
  b.AddWeightedEdge(2, 3, 1.0);
  const CsrGraph g = std::move(b.Build()).value();
  DijkstraSpd engine(g);
  engine.Run(0);
  EXPECT_DOUBLE_EQ(engine.dag().wdist[3], 3.0);
  EXPECT_EQ(engine.dag().sigma[3], 1u);
  EXPECT_EQ(engine.predecessors(3)[0], 2u);
}

TEST(DijkstraSpdTest, SettleOrderNonDecreasing) {
  const CsrGraph g = AssignUniformWeights(MakeBarabasiAlbert(100, 2, 5), 0.5,
                                          3.0, 11);
  DijkstraSpd engine(g);
  engine.Run(7);
  const auto& dag = engine.dag();
  for (std::size_t i = 1; i < dag.order.size(); ++i) {
    EXPECT_LE(dag.wdist[dag.order[i - 1]], dag.wdist[dag.order[i]] + 1e-12);
  }
}

TEST(DijkstraSpdTest, ReuseResetsState) {
  const CsrGraph g = AssignUniformWeights(MakePath(6), 1.0, 1.0, 1);
  DijkstraSpd engine(g);
  engine.Run(0);
  engine.Run(5);
  EXPECT_DOUBLE_EQ(engine.dag().wdist[0], 5.0);
  EXPECT_DOUBLE_EQ(engine.dag().wdist[5], 0.0);
  EXPECT_EQ(engine.dag().sigma[0], 1u);
}

TEST(DijkstraSpdTest, SigmaMatchesPredecessorSum) {
  const CsrGraph g =
      AssignUniformWeights(MakeErdosRenyiGnm(60, 150, 17), 1.0, 2.0, 19);
  DijkstraSpd engine(g);
  engine.Run(0);
  const auto& dag = engine.dag();
  for (VertexId v : dag.order) {
    if (v == 0) continue;
    SigmaCount pred_sum = 0;
    for (VertexId p : engine.predecessors(v)) pred_sum += dag.sigma[p];
    EXPECT_EQ(dag.sigma[v], pred_sum);
  }
}

TEST(DijkstraSpdTest, DisconnectedUnreached) {
  GraphBuilder b(3);
  b.AddWeightedEdge(0, 1, 1.5);
  const CsrGraph g = std::move(b.Build()).value();
  DijkstraSpd engine(g);
  engine.Run(0);
  EXPECT_LT(engine.dag().wdist[2], 0.0);
  EXPECT_EQ(engine.dag().sigma[2], 0u);
  EXPECT_EQ(engine.dag().num_reached(), 2u);
}

}  // namespace
}  // namespace mhbc
