#include <gtest/gtest.h>

#include <cmath>

#include "core/joint_space.h"
#include "core/mh_betweenness.h"
#include "core/theory.h"
#include "exact/brandes.h"
#include "graph/generators.h"

namespace mhbc {
namespace {

/// End-to-end validation of Theorem 1 in its intended regime: pick a
/// balanced-separator target (mu ~ constant), compute T from Eq. 14, run
/// many independent chains of length T, and check the empirical failure
/// rate P[|est - BC| > eps] stays below delta.
TEST(BoundsIntegrationTest, Eq14BudgetAchievesEpsDeltaOnSeparator) {
  const CsrGraph g = MakeBarbell(6, 1);
  const VertexId bridge = 6;
  const double exact = ExactBetweennessSingle(g, bridge);
  const auto profile = DependencyProfile(g, bridge);
  const double mu = MuFromProfile(profile);
  ASSERT_LE(mu, 2.5);  // Theorem 2 regime

  const double eps = 0.05;
  const double delta = 0.2;
  const std::uint64_t budget = SampleBound(mu, eps, delta);

  int failures = 0;
  constexpr int kChains = 40;
  for (int c = 0; c < kChains; ++c) {
    MhOptions options;
    options.seed = 1000 + static_cast<std::uint64_t>(c);
    MhBetweennessSampler sampler(g, options);
    const double estimate = sampler.Estimate(bridge, budget);
    if (std::fabs(estimate - exact) > eps) ++failures;
  }
  EXPECT_LE(static_cast<double>(failures) / kChains, delta);
}

/// The same protocol on a *skewed* target must expose the estimator's bias:
/// the chain converges to ChainLimitEstimate, so with a tight eps the
/// failure rate against the true BC blows past delta. This is the
/// reproduction's negative result (soundness analysis in EXPERIMENTS.md).
TEST(BoundsIntegrationTest, SkewedTargetConvergesToChainLimitNotTruth) {
  const CsrGraph g = MakePath(10);
  const VertexId r = 2;
  const double exact = ExactBetweennessSingle(g, r);
  const auto profile = DependencyProfile(g, r);
  const double limit = ChainLimitEstimate(profile);
  ASSERT_GT(limit - exact, 0.02);  // visible asymptotic gap

  MhOptions options;
  options.seed = 4242;
  MhBetweennessSampler sampler(g, options);
  const double estimate = sampler.Estimate(r, 50'000);
  // Estimate lands near the chain limit, far from the exact value.
  EXPECT_LT(std::fabs(estimate - limit), 0.25 * (limit - exact));
  EXPECT_GT(std::fabs(estimate - exact), 0.5 * (limit - exact));
}

/// Eq. 27 analogue for the joint sampler: the per-target sample count
/// needed for the relative score is governed by mu(rj); verify the
/// eps-accuracy of the relative estimate at the Eq. 27 budget in the
/// separator regime.
TEST(BoundsIntegrationTest, Eq27BudgetForRelativeScores) {
  const CsrGraph g = MakeBarbell(5, 3);
  const std::vector<VertexId> targets{5, 7};  // two bridge vertices
  const auto profile_j = DependencyProfile(g, targets[1]);
  const double mu_j = MuFromProfile(profile_j);
  const double eps = 0.08, delta = 0.2;
  const std::uint64_t m_j = SampleBound(mu_j, eps, delta);
  // The chain splits samples across |R| targets; budget 2x the per-target
  // requirement plus slack.
  const std::uint64_t iterations = 3 * m_j;

  const auto profile_i = DependencyProfile(g, targets[0]);
  const double expected = ChainLimitRelative(profile_i, profile_j);

  int failures = 0;
  constexpr int kChains = 25;
  for (int c = 0; c < kChains; ++c) {
    JointOptions options;
    options.seed = 2000 + static_cast<std::uint64_t>(c);
    JointSpaceSampler sampler(g, targets, options);
    const JointResult result = sampler.Run(iterations);
    ASSERT_GE(result.samples_per_target[1], m_j / 2);
    if (std::fabs(result.relative[1][0] - expected) > eps) ++failures;
  }
  EXPECT_LE(static_cast<double>(failures) / kChains, delta);
}

TEST(BoundsIntegrationTest, TailBoundConservativeEmpirically) {
  // At a fixed T the empirical failure rate should not exceed the Eq. 12
  // bound (the bound may be loose, never anti-conservative) in the
  // separator regime where the bias is negligible.
  const CsrGraph g = MakeBarbell(5, 1);
  const VertexId bridge = 5;
  const double exact = ExactBetweennessSingle(g, bridge);
  const double mu = MuFromProfile(DependencyProfile(g, bridge));
  const double eps = 0.06;
  const std::uint64_t t = 2'000;
  const double bound = TailBound(mu, eps, t);

  int failures = 0;
  constexpr int kChains = 30;
  for (int c = 0; c < kChains; ++c) {
    MhOptions options;
    options.seed = 3000 + static_cast<std::uint64_t>(c);
    MhBetweennessSampler sampler(g, options);
    if (std::fabs(sampler.Estimate(bridge, t) - exact) > eps) ++failures;
  }
  EXPECT_LE(static_cast<double>(failures) / kChains, bound + 0.05);
}

}  // namespace
}  // namespace mhbc
