#include "core/theory.h"

#include <gtest/gtest.h>

#include <cmath>

#include "exact/brandes.h"
#include "graph/generators.h"
#include "graph/graph_algos.h"

namespace mhbc {
namespace {

TEST(TheoryTest, MeanDependencyBasic) {
  EXPECT_DOUBLE_EQ(MeanDependency({2.0, 0.0, 4.0, 2.0}), 2.0);
}

TEST(TheoryTest, MuIsMaxOverMean) {
  EXPECT_DOUBLE_EQ(MuFromProfile({2.0, 0.0, 4.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(MuFromProfile({3.0, 3.0, 3.0}), 1.0);
}

TEST(TheoryTest, SampleBoundFormula) {
  // T >= mu^2/(2 eps^2) ln(2/delta).
  const double expected = 4.0 / (2.0 * 0.01) * std::log(2.0 / 0.05);
  EXPECT_EQ(SampleBound(2.0, 0.1, 0.05),
            static_cast<std::uint64_t>(std::ceil(expected)));
}

TEST(TheoryTest, SampleBoundMonotonicity) {
  EXPECT_GT(SampleBound(4.0, 0.1, 0.1), SampleBound(2.0, 0.1, 0.1));
  EXPECT_GT(SampleBound(2.0, 0.05, 0.1), SampleBound(2.0, 0.1, 0.1));
  EXPECT_GT(SampleBound(2.0, 0.1, 0.01), SampleBound(2.0, 0.1, 0.1));
}

TEST(TheoryTest, TailBoundBehaviour) {
  // Vacuous when 2 eps/mu <= 3/T.
  EXPECT_DOUBLE_EQ(TailBound(1.0, 0.1, 10), 1.0);
  // Decays with T.
  const double at_1k = TailBound(1.0, 0.1, 1'000);
  const double at_10k = TailBound(1.0, 0.1, 10'000);
  EXPECT_LT(at_10k, at_1k);
  EXPECT_LT(at_10k, 1e-8);
  // Never exceeds 1.
  EXPECT_LE(TailBound(5.0, 0.01, 100), 1.0);
}

TEST(TheoryTest, SampleBoundDeliversTailBound) {
  // Plugging T = SampleBound(mu, eps, delta) back into the tail bound
  // yields ~delta; the 3/T slack the paper drops costs a small factor,
  // and doubling T pushes the bound safely below delta.
  const double mu = 1.5, eps = 0.05, delta = 0.1;
  const std::uint64_t t = SampleBound(mu, eps, delta);
  EXPECT_LE(TailBound(mu, eps, t), delta * 1.5);
  EXPECT_LT(TailBound(mu, eps, 2 * t), delta);
}

TEST(TheoryTest, ChainLimitEqualsTruthOnUniformProfile) {
  // When all deltas are equal, E_pi[f] == BC: the estimator is unbiased.
  const std::vector<double> uniform{2.0, 2.0, 2.0, 2.0, 2.0};
  const double n = 5.0;
  const double truth = (2.0 * 5.0) / (n * (n - 1.0));
  EXPECT_NEAR(ChainLimitEstimate(uniform), truth, 1e-12);
}

TEST(TheoryTest, ChainLimitUpperBoundsTruth) {
  // E_pi[f] >= BC always (Cauchy-Schwarz), with equality iff uniform.
  const CsrGraph g = MakeBarabasiAlbert(40, 2, 3);
  const auto exact = ExactBetweenness(g);
  for (VertexId r = 0; r < 8; ++r) {
    if (exact[r] == 0.0) continue;
    const auto profile = DependencyProfile(g, r);
    EXPECT_GE(ChainLimitEstimate(profile) + 1e-12, exact[r]) << "r=" << r;
  }
}

TEST(TheoryTest, ChainLimitGapBoundedByMu) {
  // E_pi[f] / BC = n sum d^2 / (sum d)^2 <= mu.
  const CsrGraph g = MakePath(12);
  const auto exact = ExactBetweenness(g);
  for (VertexId r = 1; r < 11; ++r) {
    const auto profile = DependencyProfile(g, r);
    const double ratio = ChainLimitEstimate(profile) / exact[r];
    EXPECT_LE(ratio, MuFromProfile(profile) + 1e-9) << "r=" << r;
    EXPECT_GE(ratio, 1.0 - 1e-9);
  }
}

TEST(TheoryTest, MuConstantAtBalancedSeparators) {
  // Theorem 2: growing barbells keep mu(bridge) bounded by 1 + 1/K ~ 2,
  // while a clique vertex's mu grows with n.
  double previous_bridge_mu = 0.0;
  for (VertexId k : {5u, 10u, 20u, 40u}) {
    const CsrGraph g = MakeBarbell(k, 1);
    const VertexId bridge = k;
    ASSERT_TRUE(IsBalancedSeparator(g, bridge, 0.4));
    const double mu = MuFromProfile(DependencyProfile(g, bridge));
    EXPECT_LE(mu, 2.1) << "clique size " << k;
    previous_bridge_mu = mu;
  }
  EXPECT_GT(previous_bridge_mu, 0.9);
}

TEST(TheoryTest, MuGrowsAtNonSeparators) {
  // Star leaves neighboring... use path endpoints' neighbor (vertex 1):
  // its dependency profile concentrates on one source side, mu ~ n/2.
  std::vector<double> mus;
  for (VertexId n : {8u, 16u, 32u}) {
    const CsrGraph g = MakePath(n);
    mus.push_back(MuFromProfile(DependencyProfile(g, 1)));
  }
  EXPECT_GT(mus[1], mus[0]);
  EXPECT_GT(mus[2], mus[1]);
}

TEST(TheoryTest, ExactRelativeBetweennessPathExample) {
  // P5, targets 2 (center) and 1: hand-computed clipped ratios.
  const CsrGraph g = MakePath(5);
  const auto p2 = DependencyProfile(g, 2);
  const auto p1 = DependencyProfile(g, 1);
  // p2 = [2,2,0,2,2]; p1 = [3,0,1,1,1] (sources 0..4).
  // min{1, p2/p1} per v: [2/3, 1, 0, 1, 1] -> mean = 11/15.
  EXPECT_NEAR(ExactRelativeBetweenness(p2, p1), (2.0 / 3.0 + 3.0) / 5.0,
              1e-12);
  // min{1, p1/p2}: [1, 0, 1, 1/2, 1/2] -> mean = 3/5.
  EXPECT_NEAR(ExactRelativeBetweenness(p1, p2), 3.0 / 5.0, 1e-12);
}

TEST(TheoryTest, ChainLimitRelativeRatioRecoversExactRatio) {
  // The Theorem 3 mechanism: ChainLimitRelative(i,j)/ChainLimitRelative(j,i)
  // == raw BC(ri)/BC(rj) exactly, for every pair.
  const CsrGraph g = MakeWattsStrogatz(40, 4, 0.2, 7);
  const auto exact = ExactBetweenness(g, Normalization::kNone);
  for (VertexId ri = 0; ri < 5; ++ri) {
    for (VertexId rj = 5; rj < 10; ++rj) {
      if (exact[ri] == 0.0 || exact[rj] == 0.0) continue;
      const auto pi = DependencyProfile(g, ri);
      const auto pj = DependencyProfile(g, rj);
      const double estimated_ratio =
          ChainLimitRelative(pi, pj) / ChainLimitRelative(pj, pi);
      EXPECT_NEAR(estimated_ratio, exact[ri] / exact[rj],
                  1e-9 * (1.0 + exact[ri] / exact[rj]));
    }
  }
}

}  // namespace
}  // namespace mhbc
