#include "sp/bfs_spd.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace mhbc {
namespace {

TEST(BfsSpdTest, PathDistancesAndSigma) {
  const CsrGraph g = MakePath(6);
  BfsSpd bfs(g);
  bfs.Run(0);
  const auto& dag = bfs.dag();
  for (VertexId v = 0; v < 6; ++v) {
    EXPECT_EQ(dag.dist[v], v);
    EXPECT_EQ(dag.sigma[v], 1u);
  }
  EXPECT_EQ(dag.source, 0u);
  EXPECT_EQ(dag.num_reached(), 6u);
}

TEST(BfsSpdTest, EvenCycleAntipodalHasTwoPaths) {
  const CsrGraph g = MakeCycle(8);
  BfsSpd bfs(g);
  bfs.Run(0);
  EXPECT_EQ(bfs.dag().dist[4], 4u);
  EXPECT_EQ(bfs.dag().sigma[4], 2u);
  EXPECT_EQ(bfs.dag().sigma[3], 1u);
}

TEST(BfsSpdTest, CompleteBipartiteSigma) {
  // K_{2,3}: sides A={0,1}, B={2,3,4}. From 2 to 3: 2 paths (via 0 or 1).
  const CsrGraph g = MakeCompleteBipartite(2, 3);
  BfsSpd bfs(g);
  bfs.Run(2);
  EXPECT_EQ(bfs.dag().dist[3], 2u);
  EXPECT_EQ(bfs.dag().sigma[3], 2u);
  EXPECT_EQ(bfs.dag().sigma[0], 1u);
}

TEST(BfsSpdTest, GridSigmaBinomial) {
  // On a grid, #shortest paths from corner (0,0) to (r,c) is C(r+c, r).
  const CsrGraph g = MakeGrid(4, 4);
  BfsSpd bfs(g);
  bfs.Run(0);
  const auto& dag = bfs.dag();
  EXPECT_EQ(dag.sigma[1 * 4 + 1], 2u);   // C(2,1)
  EXPECT_EQ(dag.sigma[2 * 4 + 2], 6u);   // C(4,2)
  EXPECT_EQ(dag.sigma[3 * 4 + 3], 20u);  // C(6,3)
  EXPECT_EQ(dag.dist[3 * 4 + 3], 6u);
}

TEST(BfsSpdTest, DisconnectedLeavesUnreached) {
  // Star plus isolated vertex 5.
  GraphBuilder b = [] {
    GraphBuilder builder(6);
    for (VertexId v = 1; v < 5; ++v) builder.AddEdge(0, v);
    return builder;
  }();
  const CsrGraph g = std::move(b.Build()).value();
  BfsSpd bfs(g);
  bfs.Run(0);
  EXPECT_EQ(bfs.dag().dist[5], kUnreachedDistance);
  EXPECT_EQ(bfs.dag().sigma[5], 0u);
  EXPECT_EQ(bfs.dag().num_reached(), 5u);
}

TEST(BfsSpdTest, OrderIsNonDecreasingDistance) {
  const CsrGraph g = MakeBarabasiAlbert(150, 3, 77);
  BfsSpd bfs(g);
  bfs.Run(10);
  const auto& dag = bfs.dag();
  for (std::size_t i = 1; i < dag.order.size(); ++i) {
    EXPECT_LE(dag.dist[dag.order[i - 1]], dag.dist[dag.order[i]]);
  }
  EXPECT_EQ(dag.order.front(), 10u);
}

TEST(BfsSpdTest, ReuseAcrossSourcesResetsState) {
  const CsrGraph g = MakePath(5);
  BfsSpd bfs(g);
  bfs.Run(0);
  bfs.Run(4);
  const auto& dag = bfs.dag();
  EXPECT_EQ(dag.source, 4u);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(dag.dist[v], 4u - v);
    EXPECT_EQ(dag.sigma[v], 1u);
  }
}

TEST(BfsSpdTest, LevelOffsetsSliceOrderByDistance) {
  const CsrGraph g = MakeBarabasiAlbert(150, 3, 77);
  BfsSpd bfs(g);
  bfs.Run(10);
  const auto& dag = bfs.dag();
  ASSERT_FALSE(dag.level_offsets.empty());
  ASSERT_EQ(dag.level_offsets.front(), 0u);
  ASSERT_EQ(dag.level_offsets.back(), dag.order.size());
  for (std::size_t l = 0; l < dag.num_levels(); ++l) {
    ASSERT_LT(dag.level_offsets[l], dag.level_offsets[l + 1]);
    for (std::size_t i = dag.level_offsets[l]; i < dag.level_offsets[l + 1];
         ++i) {
      EXPECT_EQ(dag.dist[dag.order[i]], l);
    }
  }
}

TEST(BfsSpdTest, OrderIsCanonicalWithinLevels) {
  // Ascending vertex id inside each level — the order the dependency
  // sweep's regrouping contract is pinned to.
  const CsrGraph g = MakeErdosRenyiGnm(120, 400, 9);
  BfsSpd bfs(g);
  bfs.Run(3);
  const auto& dag = bfs.dag();
  for (std::size_t i = 1; i < dag.order.size(); ++i) {
    if (dag.dist[dag.order[i - 1]] == dag.dist[dag.order[i]]) {
      EXPECT_LT(dag.order[i - 1], dag.order[i]);
    }
  }
}

TEST(BfsSpdTest, SigmaTotalsMatchIndependentBfs) {
  // sigma additivity: for every v != s, sigma[v] equals the sum of sigma
  // over its SPD parents.
  const CsrGraph g = MakeErdosRenyiGnm(80, 200, 13);
  BfsSpd bfs(g);
  bfs.Run(0);
  const auto& dag = bfs.dag();
  for (VertexId v : dag.order) {
    if (v == 0) continue;
    SigmaCount parent_sum = 0;
    for (VertexId u : g.neighbors(v)) {
      if (dag.dist[u] + 1 == dag.dist[v]) parent_sum += dag.sigma[u];
    }
    EXPECT_EQ(dag.sigma[v], parent_sum) << "vertex " << v;
  }
}

}  // namespace
}  // namespace mhbc
