#include "core/multi_chain.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/theory.h"
#include "exact/brandes.h"
#include "graph/generators.h"

namespace mhbc {
namespace {

TEST(GelmanRubinTest, IdenticalChainsGiveOne) {
  std::vector<double> series{0.1, 0.5, 0.3, 0.7, 0.2, 0.4};
  EXPECT_NEAR(GelmanRubinRhat({series, series}), 1.0, 0.1);
}

TEST(GelmanRubinTest, ConstantChainsGiveOne) {
  std::vector<double> flat(50, 2.0);
  EXPECT_DOUBLE_EQ(GelmanRubinRhat({flat, flat, flat}), 1.0);
}

TEST(GelmanRubinTest, DistinctConstantChainsGiveInfinity) {
  // Zero within-chain variance but nonzero disagreement: the chains are
  // stuck at different levels, the worst possible convergence failure.
  std::vector<double> low(50, 1.0), high(50, 3.0);
  EXPECT_TRUE(std::isinf(GelmanRubinRhat({low, high})));
}

TEST(GelmanRubinTest, TwoElementSeriesIsTheMinimumAndFinite) {
  // len = 2 is the shortest legal series; the estimator must stay finite
  // and ordered (agreeing pairs near/below 1, disjoint pairs far above).
  // At n = 2 the (n-1)/n deflation legitimately pulls agreeing chains to
  // sqrt(1/2) ~ 0.71 — a known small-sample artifact, not a failure.
  const double close = GelmanRubinRhat({{0.10, 0.30}, {0.12, 0.28}});
  EXPECT_TRUE(std::isfinite(close));
  EXPECT_GE(close, 0.5);
  EXPECT_LE(close, 1.1);
  const double far = GelmanRubinRhat({{0.0, 0.01}, {10.0, 10.01}});
  EXPECT_TRUE(std::isfinite(far));
  EXPECT_GT(far, 5.0);
  EXPECT_GT(far, close);
}

TEST(GelmanRubinTest, TwoElementConstantChainsStayDegenerateSafe) {
  EXPECT_DOUBLE_EQ(GelmanRubinRhat({{2.0, 2.0}, {2.0, 2.0}}), 1.0);
  EXPECT_TRUE(std::isinf(GelmanRubinRhat({{2.0, 2.0}, {5.0, 5.0}})));
}

TEST(GelmanRubinTest, DisjointChainsBlowUp) {
  // Two chains stuck in different modes: R-hat far above 1.
  std::vector<double> low(100), high(100);
  for (int i = 0; i < 100; ++i) {
    low[static_cast<std::size_t>(i)] = 0.0 + 0.01 * (i % 3);
    high[static_cast<std::size_t>(i)] = 10.0 + 0.01 * (i % 3);
  }
  EXPECT_GT(GelmanRubinRhat({low, high}), 5.0);
}

TEST(MultiChainTest, ChainsAgreeFromArbitraryStarts) {
  // The measurable form of the paper's "no burn-in needed" claim: R-hat of
  // independent chains (different seeds => different initial states) stays
  // near 1 on a well-mixing target.
  const CsrGraph g = MakeBarbell(8, 1);
  MhOptions options;
  options.seed = 17;
  const MultiChainResult result =
      RunMultipleChains(g, /*r=*/8, /*iterations=*/3'000, /*num_chains=*/4,
                        options);
  EXPECT_LT(result.r_hat, 1.05);
  const double limit = ChainLimitEstimate(DependencyProfile(g, 8));
  EXPECT_NEAR(result.pooled_estimate, limit, 0.05 * limit);
  EXPECT_EQ(result.chain_estimates.size(), 4u);
  EXPECT_EQ(result.sp_passes, 4u * 3'001u);
}

TEST(MultiChainTest, PooledProposalEstimateUnbiased) {
  const CsrGraph g = MakeConnectedCaveman(5, 8);
  const VertexId gateway = 7;
  const double exact = ExactBetweennessSingle(g, gateway);
  MhOptions options;
  options.seed = 19;
  const MultiChainResult result =
      RunMultipleChains(g, gateway, 4'000, 4, options);
  EXPECT_NEAR(result.pooled_proposal_estimate, exact, 0.05 * exact);
}

TEST(MultiChainTest, SeedsProduceDistinctChains) {
  const CsrGraph g = MakeCycle(30);
  MhOptions options;
  options.seed = 23;
  const MultiChainResult result = RunMultipleChains(g, 0, 500, 3, options);
  // Cycle vertices all have equal positive BC, so f is constant on the
  // support; only a chain that happens to start at r itself (f = 0) adds a
  // sliver of variance. R-hat must sit at 1 up to that sliver.
  EXPECT_EQ(result.chain_estimates.size(), 3u);
  EXPECT_NEAR(result.r_hat, 1.0, 0.01);
}

}  // namespace
}  // namespace mhbc
