#include <gtest/gtest.h>

#include <vector>

#include "exact/brandes.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "sp/bfs_spd.h"
#include "sp/dependency.h"

// Property and determinism tests for the direction-optimizing SPD kernel:
// the hybrid kernel must be observationally identical to the classic
// top-down kernel — bit-identical dist/sigma, the same canonical order and
// level structure, and bit-identical dependency vectors at every α/β
// setting — on every graph family the generators produce.

namespace mhbc {
namespace {

SpdOptions Hybrid(double alpha = 3.0, double beta = 24.0) {
  SpdOptions options;
  options.kernel = SpdKernel::kHybrid;
  options.alpha = alpha;
  options.beta = beta;
  return options;
}

SpdOptions Classic() {
  SpdOptions options;
  options.kernel = SpdKernel::kClassic;
  return options;
}

/// The random-generator zoo the property tests sweep; low- and
/// high-diameter families, hubs, communities, and a disconnected case.
std::vector<CsrGraph> PropertyGraphs() {
  std::vector<CsrGraph> graphs;
  graphs.push_back(MakeBarabasiAlbert(400, 3, 0xE20));
  graphs.push_back(MakeErdosRenyiGnm(300, 900, 0xE20));
  graphs.push_back(MakeErdosRenyiGnp(250, 0.008, 0xE20));  // disconnected-ish
  graphs.push_back(MakeWattsStrogatz(300, 6, 0.1, 0xE20));
  graphs.push_back(MakeConnectedCaveman(8, 12));
  graphs.push_back(MakeGrid(14, 14));
  graphs.push_back(MakeStar(64));
  graphs.push_back(MakeCompleteBipartite(9, 17));
  return graphs;
}

void ExpectDagsIdentical(const ShortestPathDag& a, const ShortestPathDag& b) {
  ASSERT_EQ(a.source, b.source);
  // Bitwise: dist is integral, sigma double — EQ compares bits for finite
  // values either way.
  EXPECT_EQ(a.dist, b.dist);
  EXPECT_EQ(a.sigma, b.sigma);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.level_offsets, b.level_offsets);
}

TEST(SpdKernelTest, HybridMatchesClassicOnGeneratorZoo) {
  for (const CsrGraph& g : PropertyGraphs()) {
    BfsSpd classic(g, Classic());
    BfsSpd hybrid(g, Hybrid());
    const VertexId step = std::max<VertexId>(1, g.num_vertices() / 7);
    for (VertexId s = 0; s < g.num_vertices(); s += step) {
      classic.Run(s);
      hybrid.Run(s);
      SCOPED_TRACE("n=" + std::to_string(g.num_vertices()) +
                   " source=" + std::to_string(s));
      ExpectDagsIdentical(classic.dag(), hybrid.dag());
    }
  }
}

TEST(SpdKernelTest, CanonicalOrderIsAscendingWithinLevels) {
  const CsrGraph g = MakeBarabasiAlbert(500, 4, 0x51);
  for (const SpdOptions& options : {Classic(), Hybrid()}) {
    BfsSpd bfs(g, options);
    bfs.Run(17);
    const ShortestPathDag& dag = bfs.dag();
    ASSERT_GE(dag.num_levels(), 2u);
    ASSERT_EQ(dag.level_offsets.back(), dag.order.size());
    for (std::size_t l = 0; l < dag.num_levels(); ++l) {
      for (std::size_t i = dag.level_offsets[l]; i < dag.level_offsets[l + 1];
           ++i) {
        EXPECT_EQ(dag.dist[dag.order[i]], l);
        if (i > dag.level_offsets[l]) {
          EXPECT_LT(dag.order[i - 1], dag.order[i]);
        }
      }
    }
  }
}

TEST(SpdKernelTest, HybridRecordsExactPredecessorLists) {
  for (const CsrGraph& g : PropertyGraphs()) {
    BfsSpd hybrid(g, Hybrid());
    hybrid.Run(0);
    const ShortestPathDag& dag = hybrid.dag();
    ASSERT_TRUE(dag.has_predecessors);
    for (VertexId v : dag.order) {
      // Recorded parents must equal the dist-derived parent set, in
      // ascending order (the fold order the accumulation contract pins).
      std::vector<VertexId> expected;
      for (VertexId u : g.neighbors(v)) {
        if (dag.dist[u] + 1 == dag.dist[v]) expected.push_back(u);
      }
      const auto preds = dag.predecessors(v);
      ASSERT_EQ(preds.size(), expected.size()) << "vertex " << v;
      EXPECT_TRUE(std::equal(preds.begin(), preds.end(), expected.begin()))
          << "vertex " << v;
    }
  }
}

TEST(SpdKernelTest, DependencyVectorsBitIdenticalAcrossAlphaBeta) {
  const CsrGraph g = MakeBarabasiAlbert(600, 3, 0xAB);
  // Baseline: classic kernel (neighbor-rescan backward sweep).
  BfsSpd classic(g, Classic());
  DependencyAccumulator classic_acc(g);
  // Sweep aggressive-to-disabled switching; every setting must reproduce
  // the classic dependency vector bit for bit.
  const double alphas[] = {0.0, 0.25, 1.0, 1.5, 8.0, 1e9};
  const double betas[] = {0.0, 2.0, 24.0, 1e9};
  for (VertexId s : {VertexId{0}, VertexId{7}, VertexId{599}}) {
    classic.Run(s);
    const std::vector<double> baseline = classic_acc.Accumulate(classic);
    for (double alpha : alphas) {
      for (double beta : betas) {
        BfsSpd hybrid(g, Hybrid(alpha, beta));
        DependencyAccumulator acc(g);
        hybrid.Run(s);
        const std::vector<double>& deltas = acc.Accumulate(hybrid);
        ASSERT_EQ(deltas.size(), baseline.size());
        for (VertexId v = 0; v < g.num_vertices(); ++v) {
          ASSERT_EQ(deltas[v], baseline[v])
              << "alpha=" << alpha << " beta=" << beta << " s=" << s
              << " v=" << v;
        }
      }
    }
  }
}

TEST(SpdKernelTest, ForcedBottomUpIsCorrectOnClosedForms) {
  // alpha=1e9 switches to bottom-up as soon as the frontier has any edges.
  const SpdOptions forced = Hybrid(/*alpha=*/1e9, /*beta=*/0.0);
  {
    const CsrGraph g = MakeStar(40);
    BfsSpd bfs(g, forced);
    bfs.Run(5);  // leaf source: hub at 1, all other leaves at 2
    EXPECT_EQ(bfs.dag().dist[0], 1u);
    EXPECT_EQ(bfs.dag().dist[17], 2u);
    EXPECT_EQ(bfs.dag().sigma[17], 1u);
    EXPECT_GT(bfs.last_stats().bottom_up_levels, 0u);
  }
  {
    const CsrGraph g = MakeCycle(9);
    BfsSpd bfs(g, forced);
    bfs.Run(0);
    EXPECT_EQ(bfs.dag().dist[4], 4u);
    EXPECT_EQ(bfs.dag().dist[5], 4u);
    EXPECT_EQ(bfs.dag().sigma[4], 1u);
  }
  {
    // K_{2,3} from a B-side vertex: two paths to each other B vertex.
    const CsrGraph g = MakeCompleteBipartite(2, 3);
    BfsSpd bfs(g, forced);
    bfs.Run(2);
    EXPECT_EQ(bfs.dag().dist[3], 2u);
    EXPECT_EQ(bfs.dag().sigma[3], 2u);
  }
}

TEST(SpdKernelTest, ExactScoresIdenticalAcrossKernels) {
  const CsrGraph g = MakeWattsStrogatz(200, 6, 0.08, 0x77);
  const std::vector<double> classic =
      ExactBetweenness(g, Normalization::kPaper, Classic());
  const std::vector<double> hybrid =
      ExactBetweenness(g, Normalization::kPaper, Hybrid());
  EXPECT_EQ(classic, hybrid);
  const std::vector<double> parallel_hybrid =
      BrandesBetweenness(g, Normalization::kPaper, 4, Hybrid());
  const std::vector<double> parallel_classic =
      BrandesBetweenness(g, Normalization::kPaper, 4, Classic());
  EXPECT_EQ(parallel_classic, parallel_hybrid);
}

TEST(SpdKernelTest, DirectionSwitchesHappenOnLowDiameterGraphs) {
  // A BA graph is the paper's low-diameter regime: the default heuristics
  // must actually take bottom-up levels there (otherwise the hybrid kernel
  // silently degrades to classic and the perf claim is vacuous).
  const CsrGraph g = MakeBarabasiAlbert(4000, 4, 0x99);
  BfsSpd hybrid(g, Hybrid());
  hybrid.Run(0);
  EXPECT_GT(hybrid.last_stats().bottom_up_levels, 0u);
  EXPECT_GT(hybrid.last_stats().direction_switches, 0u);
  // And it must examine strictly fewer edges than the classic kernel.
  BfsSpd classic(g, Classic());
  classic.Run(0);
  EXPECT_LT(hybrid.last_stats().edges_examined,
            classic.last_stats().edges_examined);
}

// Regression: degenerate graphs (zero edges, single vertex) must take the
// classic path without ever touching — or allocating — the hybrid bitmap
// scratch, independent of any graph statistics.
TEST(SpdKernelTest, DegenerateGraphsSkipHybridScratch) {
  {
    GraphBuilder builder(4);  // four isolated vertices, zero edges
    const CsrGraph g = std::move(builder.Build()).value();
    BfsSpd bfs(g, Hybrid());
    bfs.Run(2);
    EXPECT_FALSE(bfs.hybrid_scratch_allocated());
    EXPECT_FALSE(bfs.dag().has_predecessors);
    EXPECT_EQ(bfs.dag().num_reached(), 1u);
    EXPECT_EQ(bfs.dag().dist[2], 0u);
    EXPECT_EQ(bfs.dag().sigma[2], 1u);
    EXPECT_EQ(bfs.dag().dist[0], kUnreachedDistance);
    // The dependency sweep must also be well-defined on the degenerate dag.
    DependencyAccumulator acc(g);
    const std::vector<double>& deltas = acc.Accumulate(bfs);
    for (double d : deltas) EXPECT_EQ(d, 0.0);
  }
  {
    GraphBuilder builder(1);
    const CsrGraph g = std::move(builder.Build()).value();
    BfsSpd bfs(g, Hybrid());
    bfs.Run(0);
    EXPECT_FALSE(bfs.hybrid_scratch_allocated());
    EXPECT_EQ(bfs.dag().num_reached(), 1u);
    EXPECT_EQ(bfs.dag().num_levels(), 1u);
  }
  // Contrast: a real graph does allocate the scratch.
  {
    const CsrGraph g = MakePath(8);
    BfsSpd bfs(g, Hybrid());
    bfs.Run(0);
    EXPECT_TRUE(bfs.hybrid_scratch_allocated());
  }
}

SpdOptions WithThreads(SpdOptions options, unsigned threads,
                       std::uint64_t grain = 0) {
  options.num_threads = threads;
  // grain 0 forces every level through the parallel path, so small test
  // graphs actually exercise the sharded steps.
  options.parallel_grain = grain;
  return options;
}

void ExpectPredsIdentical(const ShortestPathDag& a,
                          const ShortestPathDag& b) {
  ASSERT_EQ(a.has_predecessors, b.has_predecessors);
  if (!a.has_predecessors) return;
  for (VertexId v : a.order) {
    const auto pa = a.predecessors(v);
    const auto pb = b.predecessors(v);
    ASSERT_EQ(pa.size(), pb.size()) << "vertex " << v;
    EXPECT_TRUE(std::equal(pa.begin(), pa.end(), pb.begin())) << "vertex "
                                                              << v;
  }
}

TEST(SpdKernelTest, IntraPassParallelMatchesSequentialOnGeneratorZoo) {
  // The tentpole determinism sweep: both kernels, 2 and 4 intra-pass
  // threads, grain 0 (every level fans out) — dist/sigma/order/levels,
  // predecessor lists, and dependency vectors must be bit-identical to
  // the sequential kernel on every graph family.
  for (const CsrGraph& g : PropertyGraphs()) {
    for (const SpdOptions& base : {Classic(), Hybrid()}) {
      BfsSpd sequential(g, base);
      DependencyAccumulator sequential_acc(g);
      for (unsigned threads : {2u, 4u}) {
        BfsSpd parallel(g, WithThreads(base, threads));
        DependencyAccumulator parallel_acc(g, parallel.intra_pool(),
                                           /*parallel_grain=*/0);
        const VertexId step = std::max<VertexId>(1, g.num_vertices() / 5);
        for (VertexId s = 0; s < g.num_vertices(); s += step) {
          SCOPED_TRACE("n=" + std::to_string(g.num_vertices()) + " threads=" +
                       std::to_string(threads) + " source=" +
                       std::to_string(s));
          sequential.Run(s);
          parallel.Run(s);
          ExpectDagsIdentical(sequential.dag(), parallel.dag());
          ExpectPredsIdentical(sequential.dag(), parallel.dag());
          const std::vector<double> baseline =
              sequential_acc.Accumulate(sequential);
          const std::vector<double>& deltas =
              parallel_acc.Accumulate(parallel);
          ASSERT_EQ(deltas, baseline);
        }
      }
    }
  }
}

TEST(SpdKernelTest, IntraPassParallelShardMergeEdgeCases) {
  // Frontier shapes that stress the shard merge: single-vertex levels
  // (path), one giant level behind a hub (star), wide diagonal frontiers
  // (grid), and a tiny graph where most shards and ranges are empty.
  std::vector<CsrGraph> graphs;
  graphs.push_back(MakePath(70));
  graphs.push_back(MakeStar(130));
  graphs.push_back(MakeGrid(11, 17));
  graphs.push_back(MakeCycle(3));
  for (const CsrGraph& g : graphs) {
    for (const SpdOptions& base : {Classic(), Hybrid(),
                                   Hybrid(/*alpha=*/1e9, /*beta=*/0.0)}) {
      BfsSpd sequential(g, base);
      for (unsigned threads : {1u, 2u, 4u}) {
        BfsSpd parallel(g, WithThreads(base, threads));
        for (VertexId s :
             {VertexId{0}, static_cast<VertexId>(g.num_vertices() / 2),
              static_cast<VertexId>(g.num_vertices() - 1)}) {
          SCOPED_TRACE("n=" + std::to_string(g.num_vertices()) + " threads=" +
                       std::to_string(threads) + " source=" +
                       std::to_string(s));
          sequential.Run(s);
          parallel.Run(s);
          ExpectDagsIdentical(sequential.dag(), parallel.dag());
          ExpectPredsIdentical(sequential.dag(), parallel.dag());
        }
      }
    }
  }
}

TEST(SpdKernelTest, ParallelGrainOnlyChangesWorkNeverResults) {
  // Sweeping the grain moves levels between the sequential and parallel
  // steps; every setting must agree bit-for-bit (including stats, which
  // count examined edges identically on both paths).
  const CsrGraph g = MakeBarabasiAlbert(500, 3, 0x61);
  BfsSpd baseline(g, Hybrid());
  for (std::uint64_t grain : {std::uint64_t{0}, std::uint64_t{64},
                              std::uint64_t{100000}}) {
    BfsSpd swept(g, WithThreads(Hybrid(), 4, grain));
    for (VertexId s : {VertexId{0}, VertexId{250}}) {
      baseline.Run(s);
      swept.Run(s);
      SCOPED_TRACE("grain=" + std::to_string(grain) + " source=" +
                   std::to_string(s));
      ExpectDagsIdentical(baseline.dag(), swept.dag());
      EXPECT_EQ(baseline.last_stats().edges_examined,
                swept.last_stats().edges_examined);
      EXPECT_EQ(baseline.last_stats().bottom_up_levels,
                swept.last_stats().bottom_up_levels);
    }
  }
}

TEST(SpdKernelTest, IntraPassReuseAcrossSourcesResetsState) {
  // Engine reuse with the parallel scratch in play: alternating sources
  // must reproduce fresh-engine passes exactly.
  const CsrGraph g = MakeErdosRenyiGnm(220, 700, 0x43);
  BfsSpd reused(g, WithThreads(Hybrid(), 4));
  for (VertexId s : {VertexId{0}, VertexId{160}, VertexId{9}, VertexId{0}}) {
    reused.Run(s);
    BfsSpd fresh(g, Hybrid());
    fresh.Run(s);
    ExpectDagsIdentical(reused.dag(), fresh.dag());
    ExpectPredsIdentical(reused.dag(), fresh.dag());
  }
}

TEST(SpdKernelTest, IntraPassZeroThreadsStandaloneIsSequential) {
  // num_threads == 0 means "inherit"; standalone engines have nothing to
  // inherit from and must stay sequential (no pool).
  const CsrGraph g = MakePath(10);
  BfsSpd inherit(g, Hybrid());
  EXPECT_EQ(inherit.intra_pool(), nullptr);
  BfsSpd one(g, WithThreads(Hybrid(), 1));
  EXPECT_EQ(one.intra_pool(), nullptr);
  BfsSpd two(g, WithThreads(Hybrid(), 2));
  EXPECT_NE(two.intra_pool(), nullptr);
}

TEST(SpdKernelTest, StatsAccumulateAcrossRuns) {
  const CsrGraph g = MakeBarabasiAlbert(300, 3, 0x31);
  BfsSpd bfs(g, Hybrid());
  bfs.Run(0);
  const std::uint64_t first = bfs.last_stats().edges_examined;
  EXPECT_GT(first, 0u);
  EXPECT_EQ(bfs.total_stats().edges_examined, first);
  bfs.Run(1);
  EXPECT_EQ(bfs.total_stats().edges_examined,
            first + bfs.last_stats().edges_examined);
}

TEST(SpdKernelTest, ReuseAcrossSourcesResetsHybridState) {
  // Alternating sources on one engine: every pass must be identical to a
  // fresh engine's pass (the lazy reset covers dist/sigma/bitmap/preds).
  const CsrGraph g = MakeErdosRenyiGnm(200, 600, 0x42);
  BfsSpd reused(g, Hybrid());
  for (VertexId s : {VertexId{0}, VertexId{150}, VertexId{3}, VertexId{0}}) {
    reused.Run(s);
    BfsSpd fresh(g, Hybrid());
    fresh.Run(s);
    ExpectDagsIdentical(reused.dag(), fresh.dag());
    for (VertexId v : reused.dag().order) {
      const auto a = reused.dag().predecessors(v);
      const auto b = fresh.dag().predecessors(v);
      ASSERT_EQ(a.size(), b.size());
      EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
    }
  }
}

}  // namespace
}  // namespace mhbc
