#include "core/mh_betweenness.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/theory.h"
#include "exact/brandes.h"
#include "graph/generators.h"

namespace mhbc {
namespace {

TEST(MhBetweennessTest, BarbellBridgeAccurateWithinMuFactor) {
  // Theorem 2 regime: the bridge of a barbell is a balanced separator with
  // mu ~ 1. The Eq. 7 chain average converges to E_pi[f]
  // (ChainLimitEstimate), whose gap above the exact score is bounded by the
  // factor mu(r) — small here, so the estimate is close to exact.
  const CsrGraph g = MakeBarbell(6, 1);
  const VertexId bridge = 6;
  const double exact = ExactBetweennessSingle(g, bridge);
  const auto profile = DependencyProfile(g, bridge);
  const double mu = MuFromProfile(profile);
  const double limit = ChainLimitEstimate(profile);
  ASSERT_LE(mu, 1.1);  // separator: near-uniform dependencies
  MhOptions options;
  options.seed = 7;
  MhBetweennessSampler sampler(g, options);
  const double estimate = sampler.Estimate(bridge, 4'000);
  // Converges to the chain limit...
  EXPECT_NEAR(estimate, limit, 0.03 * limit);
  // ...which sits within the mu factor of the exact score.
  EXPECT_LE(estimate, exact * mu * 1.03);
  EXPECT_GE(estimate, exact * 0.97);
}

TEST(MhBetweennessTest, StarCenterAccurateWithinMuFactor) {
  // Star center: every leaf has identical dependency; mu = n/(n-1). The
  // asymptotic bias factor n sum d^2/(sum d)^2 equals mu exactly here.
  const CsrGraph g = MakeStar(20);
  const double exact = ExactBetweennessSingle(g, 0);
  const auto profile = DependencyProfile(g, 0);
  const double limit = ChainLimitEstimate(profile);
  EXPECT_NEAR(limit, exact * 20.0 / 19.0, 1e-12);
  MhOptions options;
  options.seed = 9;
  MhBetweennessSampler sampler(g, options);
  EXPECT_NEAR(sampler.Estimate(0, 3'000), limit, 0.03 * limit);
}

TEST(MhBetweennessTest, ConvergesToChainLimitNotUniformMean) {
  // On a skewed-dependency target the Eq. 7 average converges to
  // E_pi[f] (theory.h ChainLimitEstimate), which differs from BC(r): the
  // reproduction pins the estimator's actual asymptotics.
  const CsrGraph g = MakePath(8);
  const VertexId r = 2;  // asymmetric position: heterogeneous deltas
  const auto profile = DependencyProfile(g, r);
  const double limit = ChainLimitEstimate(profile);
  const double exact = ExactBetweennessSingle(g, r);
  MhOptions options;
  options.seed = 11;
  MhBetweennessSampler sampler(g, options);
  const double estimate = sampler.Estimate(r, 60'000);
  EXPECT_NEAR(estimate, limit, 0.02 * limit);
  // And the limit is measurably above the true score on this topology.
  EXPECT_GT(limit, exact * 1.05);
}

TEST(MhBetweennessTest, ProposalEstimateIsUnbiasedCompanion) {
  const CsrGraph g = MakePath(8);
  const VertexId r = 2;
  const double exact = ExactBetweennessSingle(g, r);
  MhOptions options;
  options.seed = 13;
  MhBetweennessSampler sampler(g, options);
  const MhResult result = sampler.Run(r, 40'000);
  EXPECT_NEAR(result.proposal_estimate, exact, 0.05 * exact);
}

TEST(MhBetweennessTest, DiagnosticsConsistency) {
  const CsrGraph g = MakeBarbell(4, 1);
  MhOptions options;
  options.seed = 17;
  MhBetweennessSampler sampler(g, options);
  const MhResult result = sampler.Run(4, 500);
  EXPECT_EQ(result.diagnostics.iterations, 500u);
  EXPECT_EQ(result.diagnostics.accepted + result.diagnostics.rejected, 500u);
  EXPECT_EQ(result.diagnostics.sp_passes, 501u);  // initial + per-iteration
  EXPECT_GE(result.diagnostics.distinct_states, 1u);
  EXPECT_GT(result.diagnostics.acceptance_rate(), 0.0);
}

TEST(MhBetweennessTest, TraceRecordedWhenRequested) {
  const CsrGraph g = MakeCycle(10);
  MhOptions options;
  options.seed = 19;
  options.record_trace = true;
  MhBetweennessSampler sampler(g, options);
  const MhResult result = sampler.Run(0, 200);
  EXPECT_EQ(result.trace.size(), 201u);  // initial state + T
  EXPECT_EQ(result.f_series.size(), 201u);
  // f values must match delta/(n-1) in [0, 1] range for the cycle.
  for (double f : result.f_series) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
}

TEST(MhBetweennessTest, DeterministicForSeed) {
  const CsrGraph g = MakeBarabasiAlbert(40, 2, 23);
  MhOptions options;
  options.seed = 1234;
  MhBetweennessSampler a(g, options);
  MhBetweennessSampler b(g, options);
  EXPECT_DOUBLE_EQ(a.Estimate(3, 400), b.Estimate(3, 400));
}

TEST(MhBetweennessTest, FixedInitialStateRespected) {
  const CsrGraph g = MakeCycle(12);
  MhOptions options;
  options.seed = 29;
  options.initial_state = 5;
  options.record_trace = true;
  MhBetweennessSampler sampler(g, options);
  const MhResult result = sampler.Run(0, 50);
  EXPECT_EQ(result.trace.front(), 5u);
}

TEST(MhBetweennessTest, BurnInDiscardsPrefix) {
  const CsrGraph g = MakeCycle(12);
  MhOptions options;
  options.seed = 31;
  options.burn_in = 100;
  options.record_trace = true;
  MhBetweennessSampler sampler(g, options);
  const MhResult result = sampler.Run(0, 300);
  // Only post-burn-in states are recorded: exactly `iterations` of them.
  EXPECT_EQ(result.trace.size(), 300u);
  EXPECT_EQ(result.diagnostics.iterations, 400u);
}

TEST(MhBetweennessTest, ZeroDependencyInitialStateRecovers) {
  // Start the chain at a leaf of a star with target = center: the leaf has
  // delta > 0 on center... use target = leaf instead: nearly all states
  // have zero dependency on a leaf; chain must not crash and must estimate
  // ~0 for the leaf.
  const CsrGraph g = MakeStar(10);
  MhOptions options;
  options.seed = 37;
  options.initial_state = 3;
  MhBetweennessSampler sampler(g, options);
  const double estimate = sampler.Estimate(/*r=*/4, 500);
  EXPECT_DOUBLE_EQ(estimate, 0.0);
}

TEST(MhBetweennessTest, WeightedGraphSupported) {
  // Unit weights route identically to the unweighted graph, so the chain
  // limit (and hence the estimate) matches the unweighted one.
  const CsrGraph wg = AssignUniformWeights(MakeBarbell(5, 1), 1.0, 1.0, 41);
  const CsrGraph g = MakeBarbell(5, 1);
  const double limit = ChainLimitEstimate(DependencyProfile(g, 5));
  MhOptions options;
  options.seed = 43;
  MhBetweennessSampler sampler(wg, options);
  EXPECT_NEAR(sampler.Estimate(5, 3'000), limit, 0.03 * limit);
}

TEST(MhBetweennessTest, DegreeProportionalProposalStillConverges) {
  // E12 ablation path: the Hastings correction keeps the stationary
  // distribution intact, so the chain converges to the same limit as the
  // uniform-proposal chain.
  const CsrGraph g = MakeBarbell(5, 1);
  const double limit = ChainLimitEstimate(DependencyProfile(g, 5));
  MhOptions options;
  options.seed = 47;
  options.proposal = ProposalKind::kDegreeProportional;
  MhBetweennessSampler sampler(g, options);
  EXPECT_NEAR(sampler.Estimate(5, 6'000), limit, 0.05 * limit);
}

}  // namespace
}  // namespace mhbc
