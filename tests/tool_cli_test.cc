// Negative-path coverage for the mhbc_tool CLI: every malformed
// invocation must exit non-zero with a diagnostic on stderr, never
// succeed silently or crash — and with the documented exit-code class:
// 2 for usage errors, 3 for I/O failures (missing/unwritable/corrupt
// files), 4 for computations that reject loadable input. The binary path
// is injected by CMake as MHBC_TOOL_PATH (the test target depends on the
// mhbc_tool target and is skipped when examples are not built).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#define MHBC_TOOL_TEST_SUPPORTED 1
#else
#define MHBC_TOOL_TEST_SUPPORTED 0
#endif

namespace {

namespace fs = std::filesystem;

struct ToolRun {
  int exit_code = -1;
  std::string stderr_text;
};

// mhbc_tool's documented exit-code classes (examples/mhbc_tool.cpp).
constexpr int kExitUsage = 2;
constexpr int kExitIo = 3;
constexpr int kExitCompute = 4;

class ToolCliTest : public ::testing::Test {
 protected:
  void SetUp() override {
#if !MHBC_TOOL_TEST_SUPPORTED
    GTEST_SKIP() << "subprocess harness requires a POSIX shell";
#endif
    dir_ = fs::temp_directory_path() / "mhbc_tool_cli_test";
    fs::create_directories(dir_);
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string Path(const std::string& leaf) { return (dir_ / leaf).string(); }

  /// Shell-quotes one argument (paths may contain spaces or metachars).
  static std::string Quote(const std::string& arg) {
    std::string quoted = "'";
    for (const char c : arg) {
      if (c == '\'') {
        quoted += "'\\''";
      } else {
        quoted += c;
      }
    }
    quoted += "'";
    return quoted;
  }

  /// Runs the tool with `args`, discarding stdout and capturing stderr.
  /// Call sites must Quote() any path they embed in `args`.
  ToolRun Run(const std::string& args) {
    ToolRun run;
#if MHBC_TOOL_TEST_SUPPORTED
    const std::string err_file = Path("stderr.txt");
    const std::string command = Quote(MHBC_TOOL_PATH) + " " + args +
                                " > /dev/null 2> " + Quote(err_file);
    const int raw = std::system(command.c_str());
    run.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
    std::ifstream err(err_file);
    std::ostringstream text;
    text << err.rdbuf();
    run.stderr_text = text.str();
#else
    (void)args;
#endif
    return run;
  }

  /// Runs the tool with `args`, capturing stdout (for positive-path
  /// output assertions) and discarding stderr.
  std::string RunStdout(const std::string& args, int* exit_code) {
#if MHBC_TOOL_TEST_SUPPORTED
    const std::string out_file = Path("stdout.txt");
    const std::string command = Quote(MHBC_TOOL_PATH) + " " + args + " > " +
                                Quote(out_file) + " 2> /dev/null";
    const int raw = std::system(command.c_str());
    *exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
    std::ifstream out(out_file);
    std::ostringstream text;
    text << out.rdbuf();
    return text.str();
#else
    (void)args;
    *exit_code = -1;
    return "";
#endif
  }

  /// Writes a small valid edge-list graph and returns its path,
  /// shell-quoted for embedding in Run() args.
  std::string ValidGraph() {
    const std::string path = Path("graph.txt");
    std::ofstream out(path);
    for (int v = 1; v < 12; ++v) out << 0 << " " << v << "\n";
    for (int v = 1; v < 11; ++v) out << v << " " << v + 1 << "\n";
    return Quote(path);
  }

  /// `expected_code` < 0 accepts any non-zero exit; otherwise the exact
  /// documented exit-code class is asserted.
  void ExpectFailure(const std::string& args, const std::string& needle,
                     int expected_code = -1) {
    const ToolRun run = Run(args);
    EXPECT_NE(run.exit_code, 0) << "succeeded: mhbc_tool " << args;
    if (expected_code >= 0) {
      EXPECT_EQ(run.exit_code, expected_code)
          << "wrong exit class for: mhbc_tool " << args
          << "\nstderr: " << run.stderr_text;
    }
    EXPECT_NE(run.stderr_text.find("error:"), std::string::npos)
        << "no diagnostic for: mhbc_tool " << args
        << "\nstderr: " << run.stderr_text;
    if (!needle.empty()) {
      EXPECT_NE(run.stderr_text.find(needle), std::string::npos)
          << "diagnostic for 'mhbc_tool " << args << "' missing '" << needle
          << "': " << run.stderr_text;
    }
  }

  fs::path dir_;
};

TEST_F(ToolCliTest, SanityAValidInvocationSucceeds) {
  const ToolRun run = Run("stats " + ValidGraph());
  EXPECT_EQ(run.exit_code, 0) << run.stderr_text;
}

TEST_F(ToolCliTest, UnknownSubcommandFails) {
  ExpectFailure("frobnicate " + ValidGraph(), "unknown command",
                kExitUsage);
}

TEST_F(ToolCliTest, WrongArityFails) {
  ExpectFailure("exact " + ValidGraph(), "unknown command or wrong arity",
                kExitUsage);
  ExpectFailure("topk " + ValidGraph(), "", kExitUsage);
  ExpectFailure("generate ba 10 " + Quote(Path("out.txt")), "", kExitUsage);
}

TEST_F(ToolCliTest, UnknownFlagAndMalformedThreadsFail) {
  ExpectFailure("--frobnicate stats " + ValidGraph(), "unknown flag",
                kExitUsage);
  ExpectFailure("--threads=abc stats " + ValidGraph(), "--threads",
                kExitUsage);
  ExpectFailure("--graph= stats", "--graph", kExitUsage);
}

TEST_F(ToolCliTest, MalformedSpdThreadsFails) {
  ExpectFailure("--spd-threads=abc stats " + ValidGraph(), "--spd-threads",
                kExitUsage);
  ExpectFailure("--spd-threads= stats " + ValidGraph(), "--spd-threads",
                kExitUsage);
  ExpectFailure("--spd-threads=99999 stats " + ValidGraph(),
                "implausibly large", kExitUsage);
}

TEST_F(ToolCliTest, SpdThreadsFlagIsAcceptedAndReportedInJson) {
  const std::string graph = ValidGraph();
  int exit_code = -1;
  // exact: the kernel/spd_threads fields must reflect the flag.
  const std::string exact = RunStdout(
      "--spd-threads=2 --json exact " + graph + " 0", &exit_code);
  EXPECT_EQ(exit_code, 0) << exact;
  EXPECT_NE(exact.find("\"kernel\": \"hybrid\""), std::string::npos) << exact;
  EXPECT_NE(exact.find("\"spd_threads\": 2"), std::string::npos) << exact;
  // estimate: every report object carries them too.
  const std::string estimate = RunStdout(
      "--spd-threads=4 --json estimate " + graph + " 0,1 mh 200 7",
      &exit_code);
  EXPECT_EQ(estimate.find("\"kernel\": \"hybrid\"") != std::string::npos &&
                estimate.find("\"spd_threads\": 4") != std::string::npos,
            true)
      << estimate;
  EXPECT_EQ(exit_code, 0) << estimate;
  // The default (0 = inherit --threads) is reported verbatim, and results
  // are identical to the intra-parallel run — same value at any width.
  const std::string plain =
      RunStdout("--json exact " + graph + " 0", &exit_code);
  EXPECT_EQ(exit_code, 0) << plain;
  EXPECT_NE(plain.find("\"spd_threads\": 0"), std::string::npos) << plain;
  const auto value_of = [](const std::string& json) {
    const std::string key = "\"value\": ";
    const std::size_t at = json.find(key);
    return at == std::string::npos ? std::string()
                                   : json.substr(at, json.find(',', at) - at);
  };
  EXPECT_EQ(value_of(plain), value_of(exact));
  EXPECT_FALSE(value_of(plain).empty());
}

TEST_F(ToolCliTest, MissingGraphFileFails) {
  ExpectFailure("stats " + Quote(Path("no-such-graph.txt")), "", kExitIo);
  ExpectFailure(Quote("--graph=" + Path("nope.mhbc")) + " stats", "",
                kExitIo);
}

TEST_F(ToolCliTest, UnknownEstimatorAndBadVerticesFail) {
  const std::string graph = ValidGraph();
  ExpectFailure("estimate " + graph + " 1,2 frobnicator", "unknown estimator",
                kExitUsage);
  ExpectFailure("estimate " + graph + " junk", "no vertex ids", kExitUsage);
  ExpectFailure("estimate " + graph + " 9999 mh 100", "out of range",
                kExitCompute);
}

TEST_F(ToolCliTest, MutateRejectsMissingAndMalformedEditScripts) {
  const std::string graph = ValidGraph();
  ExpectFailure("mutate " + graph + " " + Quote(Path("no.edits")) + " 1,2",
                "", kExitIo);

  const std::string bad = Path("bad.edits");
  std::ofstream(bad) << "add 0 1\nfrobnicate 2 3\n";
  ExpectFailure("mutate " + graph + " " + Quote(bad) + " 1,2", "unknown op",
                kExitCompute);

  const std::string invalid = Path("invalid.edits");
  std::ofstream(invalid) << "remove 0 11\nremove 0 11\n";  // second: gone
  ExpectFailure("mutate " + graph + " " + Quote(invalid) + " 1,2",
                "no such edge", kExitCompute);
}

TEST_F(ToolCliTest, ConvertOntoUnwritablePathFails) {
  const std::string graph = ValidGraph();
  // A destination inside a directory that does not exist can never be
  // opened for writing, root or not.
  const std::string unwritable =
      Path("missing-subdir") + "/deeper/out.mhbc";
  ExpectFailure("convert " + graph + " " + Quote(unwritable), "", kExitIo);
  const std::string unwritable_mtx =
      Path("missing-subdir") + "/deeper/out.mtx";
  ExpectFailure("convert " + graph + " " + Quote(unwritable_mtx), "",
                kExitIo);
}

TEST_F(ToolCliTest, InspectOnCorruptSnapshotFails) {
  const std::string graph = ValidGraph();
  const std::string snapshot = Path("graph.mhbc");
  ASSERT_EQ(Run("convert " + graph + " " + Quote(snapshot)).exit_code, 0);
  // Corrupt one payload byte (XOR so the byte is guaranteed to change);
  // inspect must exit non-zero on the checksum mismatch.
  std::fstream file(snapshot,
                    std::ios::binary | std::ios::in | std::ios::out);
  file.seekg(100);
  const int byte = file.get();
  file.seekp(100);
  file.put(static_cast<char>(static_cast<unsigned char>(byte) ^ 0xA5u));
  file.close();
  const ToolRun run = Run("inspect " + Quote(snapshot));
  EXPECT_EQ(run.exit_code, kExitIo) << run.stderr_text;
}

}  // namespace
