#include "exact/co_betweenness.h"

#include <gtest/gtest.h>

#include "exact/brandes.h"
#include "graph/generators.h"

namespace mhbc {
namespace {

TEST(CoBetweennessTest, PathAdjacentInteriorPair) {
  // P5 = 0-1-2-3-4, pair {1,2}: ordered pairs routed through both:
  // (0,3), (0,4) and reverses -> raw co = 4.
  const CsrGraph g = MakePath(5);
  EXPECT_DOUBLE_EQ(CoBetweennessPair(g, 1, 2, Normalization::kNone), 4.0);
}

TEST(CoBetweennessTest, SymmetricInArguments) {
  const CsrGraph g = MakeBarbell(4, 2);
  EXPECT_DOUBLE_EQ(CoBetweennessPair(g, 4, 5, Normalization::kNone),
                   CoBetweennessPair(g, 5, 4, Normalization::kNone));
}

TEST(CoBetweennessTest, DisjointLeavesZero) {
  // Star leaves never co-occur as interior vertices.
  const CsrGraph g = MakeStar(7);
  EXPECT_DOUBLE_EQ(CoBetweennessPair(g, 1, 2, Normalization::kNone), 0.0);
}

TEST(CoBetweennessTest, BarbellBridgePairCarriesAllCrossTraffic) {
  // Barbell(k, 2): both bridge vertices lie on every cross-clique path.
  constexpr VertexId kClique = 4;
  const CsrGraph g = MakeBarbell(kClique, 2);
  const VertexId b1 = kClique, b2 = kClique + 1;
  // Cross pairs: clique x clique both directions, plus pairs
  // (left clique or b1-side) x (right side)... restrict: s,t outside {b1,b2}.
  // Left side: k vertices, right side: k vertices -> raw = 2 k^2.
  EXPECT_DOUBLE_EQ(CoBetweennessPair(g, b1, b2, Normalization::kNone),
                   2.0 * kClique * kClique);
}

TEST(GroupBetweennessTest, InclusionExclusionAgainstSingles) {
  // For any pair: group = through_u + through_w - co, where through_x
  // excludes endpoints in {u, w}. On a star, group of two leaves is 0.
  const CsrGraph g = MakeStar(6);
  EXPECT_DOUBLE_EQ(GroupBetweennessPair(g, 1, 2, Normalization::kNone), 0.0);
}

TEST(GroupBetweennessTest, PathPairCoversBothSegments) {
  // P5, group {1,3}: ordered pairs passing through 1 or 3 with endpoints
  // outside {1,3}: pairs (0,2),(0,4),(2,4) and reverses -> 6.
  const CsrGraph g = MakePath(5);
  EXPECT_DOUBLE_EQ(GroupBetweennessPair(g, 1, 3, Normalization::kNone), 6.0);
}

TEST(GroupBetweennessTest, GroupAtLeastMaxOfRestrictedSingles) {
  const CsrGraph g = MakeBarabasiAlbert(30, 2, 13);
  for (VertexId u = 0; u < 5; ++u) {
    const VertexId w = u + 5;
    const double group = GroupBetweennessPair(g, u, w, Normalization::kNone);
    const double co = CoBetweennessPair(g, u, w, Normalization::kNone);
    EXPECT_GE(group + 1e-9, co);  // inclusion-exclusion sanity
  }
}

TEST(GroupBetweennessTest, PaperNormalizationApplied) {
  const CsrGraph g = MakePath(5);
  const double raw = GroupBetweennessPair(g, 1, 3, Normalization::kNone);
  const double paper = GroupBetweennessPair(g, 1, 3, Normalization::kPaper);
  EXPECT_DOUBLE_EQ(paper, raw / (5.0 * 4.0));
}

}  // namespace
}  // namespace mhbc
