#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace mhbc {
namespace {

TEST(ResolveThreadCountTest, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(ResolveThreadCount(0), 1u);
  EXPECT_EQ(ResolveThreadCount(1), 1u);
  EXPECT_EQ(ResolveThreadCount(7), 7u);
}

TEST(ThreadPoolTest, SingleThreadRunsInlineWithoutWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> order;
  pool.ParallelFor(5, [&order](unsigned worker, std::size_t index) {
    EXPECT_EQ(worker, 0u);  // inline: the caller is the only worker
    order.push_back(static_cast<int>(index));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));  // in order, inline
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    for (auto& hit : hits) hit.store(0);
    pool.ParallelFor(kCount, [&hits](unsigned worker, std::size_t index) {
      EXPECT_LT(worker, 8u);
      hits[index].fetch_add(1);
    });
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " at " << threads
                                   << " threads";
    }
  }
}

TEST(ThreadPoolTest, WorkerIdsStayInRange) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  std::atomic<bool> in_range{true};
  pool.ParallelFor(500, [&in_range](unsigned worker, std::size_t) {
    if (worker >= 3) in_range.store(false);
  });
  EXPECT_TRUE(in_range.load());
}

TEST(ThreadPoolTest, ZeroCountIsANoop) {
  ThreadPool pool(4);
  bool ran = false;
  pool.ParallelFor(0, [&ran](unsigned, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossManyJobs) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> total{0};
  for (int job = 0; job < 50; ++job) {
    pool.ParallelFor(20, [&total](unsigned, std::size_t index) {
      total.fetch_add(index);
    });
  }
  EXPECT_EQ(total.load(), 50ull * (19 * 20 / 2));
}

TEST(ParallelMapTest, ResultsComeBackInIndexOrder) {
  for (unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    const std::vector<int> squares = ParallelMap<int>(
        &pool, 100,
        [](unsigned, std::size_t i) { return static_cast<int>(i * i); });
    ASSERT_EQ(squares.size(), 100u);
    for (std::size_t i = 0; i < squares.size(); ++i) {
      EXPECT_EQ(squares[i], static_cast<int>(i * i));
    }
  }
}

TEST(ShardBoundsTest, ShardsPartitionTheRangeContiguously) {
  for (std::size_t count : {0u, 1u, 7u, 31u, 32u, 33u, 1000u}) {
    for (std::size_t shards : {1u, 2u, 32u}) {
      std::size_t expected_begin = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        const auto [begin, end] = ShardBounds(count, s, shards);
        EXPECT_EQ(begin, expected_begin)
            << "count " << count << " shard " << s << "/" << shards;
        EXPECT_LE(begin, end);
        // Balanced to within one element.
        EXPECT_LE(end - begin, count / shards + 1);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, count);  // exact cover, no gaps or overlap
    }
  }
}

TEST(ShardBoundsTest, BoundsDependOnlyOnCountAndShardStructure) {
  // The same (count, shards) pair always yields the same boundaries —
  // there is no hidden thread-count input.
  EXPECT_EQ(ShardBounds(100, 3, 32), ShardBounds(100, 3, 32));
  EXPECT_EQ(ShardBounds(100, 0, 32).first, 0u);
  EXPECT_EQ(ShardBounds(100, 31, 32).second, 100u);
}

TEST(ParallelShardedLevelTest, MergeRunsInShardOrderAtAnyThreadCount) {
  // Non-commutative merge (string concat): identical output at every
  // thread count proves the ordered-merge contract.
  auto run = [](unsigned threads) {
    ThreadPool pool(threads);
    constexpr std::size_t kShards = 26;
    std::vector<std::string> produced(kShards);
    std::string merged;
    ParallelShardedLevel(
        &pool, kShards,
        [&produced](unsigned, std::size_t shard) {
          produced[shard] = std::string(1, static_cast<char>('a' + shard));
        },
        [&produced, &merged](std::size_t shard) { merged += produced[shard]; });
    return merged;
  };
  const std::string expected = "abcdefghijklmnopqrstuvwxyz";
  EXPECT_EQ(run(1), expected);
  EXPECT_EQ(run(2), expected);
  EXPECT_EQ(run(4), expected);
}

TEST(ParallelShardedLevelTest, EveryShardExpandsOnceBeforeAnyMerge) {
  ThreadPool pool(4);
  constexpr std::size_t kShards = 40;
  std::vector<std::atomic<int>> expanded(kShards);
  for (auto& e : expanded) e.store(0);
  std::size_t merges = 0;
  ParallelShardedLevel(
      &pool, kShards,
      [&expanded](unsigned, std::size_t shard) {
        expanded[shard].fetch_add(1);
      },
      [&expanded, &merges](std::size_t shard) {
        // The fan-out is a barrier: by the first merge, every expansion
        // has completed exactly once.
        EXPECT_EQ(expanded[shard].load(), 1) << "shard " << shard;
        ++merges;
      });
  EXPECT_EQ(merges, kShards);
}

TEST(ParallelShardedLevelTest, LevelSequenceReproducesSequentialFold) {
  // Drive several consecutive levels (the BFS usage shape) accumulating a
  // float in shard order; the sum must be bit-identical across thread
  // counts even though per-shard values differ wildly in magnitude.
  auto run = [](unsigned threads) {
    ThreadPool pool(threads);
    double total = 0.0;
    std::vector<double> partial(8, 0.0);
    for (int level = 0; level < 5; ++level) {
      ParallelShardedLevel(
          &pool, partial.size(),
          [&partial, level](unsigned, std::size_t shard) {
            partial[shard] =
                1.0 / static_cast<double>((level + 1) * (shard + 1));
          },
          [&partial, &total](std::size_t shard) { total += partial[shard]; });
    }
    return total;
  };
  const double expected = run(1);
  EXPECT_EQ(run(2), expected);  // bitwise: EXPECT_EQ on double
  EXPECT_EQ(run(3), expected);
  EXPECT_EQ(run(4), expected);
}

TEST(ParallelOrderedReduceTest, FoldRunsInIndexOrderAtAnyThreadCount) {
  // The fold sees results strictly in index order, so a non-commutative
  // reduction gives the same answer at any thread count.
  auto concatenate = [](unsigned threads) {
    ThreadPool pool(threads);
    std::string out;
    ParallelOrderedReduce<std::string>(
        &pool, 26,
        [](unsigned, std::size_t i) {
          return std::string(1, static_cast<char>('a' + i));
        },
        &out,
        [](std::string* accum, std::string piece, std::size_t) {
          *accum += piece;
        });
    return out;
  };
  const std::string expected = "abcdefghijklmnopqrstuvwxyz";
  EXPECT_EQ(concatenate(1), expected);
  EXPECT_EQ(concatenate(2), expected);
  EXPECT_EQ(concatenate(4), expected);
}

}  // namespace
}  // namespace mhbc
