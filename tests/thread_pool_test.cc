#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace mhbc {
namespace {

TEST(ResolveThreadCountTest, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(ResolveThreadCount(0), 1u);
  EXPECT_EQ(ResolveThreadCount(1), 1u);
  EXPECT_EQ(ResolveThreadCount(7), 7u);
}

TEST(ThreadPoolTest, SingleThreadRunsInlineWithoutWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> order;
  pool.ParallelFor(5, [&order](unsigned worker, std::size_t index) {
    EXPECT_EQ(worker, 0u);  // inline: the caller is the only worker
    order.push_back(static_cast<int>(index));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));  // in order, inline
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    for (auto& hit : hits) hit.store(0);
    pool.ParallelFor(kCount, [&hits](unsigned worker, std::size_t index) {
      EXPECT_LT(worker, 8u);
      hits[index].fetch_add(1);
    });
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " at " << threads
                                   << " threads";
    }
  }
}

TEST(ThreadPoolTest, WorkerIdsStayInRange) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  std::atomic<bool> in_range{true};
  pool.ParallelFor(500, [&in_range](unsigned worker, std::size_t) {
    if (worker >= 3) in_range.store(false);
  });
  EXPECT_TRUE(in_range.load());
}

TEST(ThreadPoolTest, ZeroCountIsANoop) {
  ThreadPool pool(4);
  bool ran = false;
  pool.ParallelFor(0, [&ran](unsigned, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossManyJobs) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> total{0};
  for (int job = 0; job < 50; ++job) {
    pool.ParallelFor(20, [&total](unsigned, std::size_t index) {
      total.fetch_add(index);
    });
  }
  EXPECT_EQ(total.load(), 50ull * (19 * 20 / 2));
}

TEST(ParallelMapTest, ResultsComeBackInIndexOrder) {
  for (unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    const std::vector<int> squares = ParallelMap<int>(
        &pool, 100,
        [](unsigned, std::size_t i) { return static_cast<int>(i * i); });
    ASSERT_EQ(squares.size(), 100u);
    for (std::size_t i = 0; i < squares.size(); ++i) {
      EXPECT_EQ(squares[i], static_cast<int>(i * i));
    }
  }
}

TEST(ParallelOrderedReduceTest, FoldRunsInIndexOrderAtAnyThreadCount) {
  // The fold sees results strictly in index order, so a non-commutative
  // reduction gives the same answer at any thread count.
  auto concatenate = [](unsigned threads) {
    ThreadPool pool(threads);
    std::string out;
    ParallelOrderedReduce<std::string>(
        &pool, 26,
        [](unsigned, std::size_t i) {
          return std::string(1, static_cast<char>('a' + i));
        },
        &out,
        [](std::string* accum, std::string piece, std::size_t) {
          *accum += piece;
        });
    return out;
  };
  const std::string expected = "abcdefghijklmnopqrstuvwxyz";
  EXPECT_EQ(concatenate(1), expected);
  EXPECT_EQ(concatenate(2), expected);
  EXPECT_EQ(concatenate(4), expected);
}

}  // namespace
}  // namespace mhbc
