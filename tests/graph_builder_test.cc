#include "graph/graph_builder.h"

#include <gtest/gtest.h>

namespace mhbc {
namespace {

TEST(GraphBuilderTest, RejectsOutOfRangeEndpoint) {
  GraphBuilder b(3);
  b.AddEdge(0, 3);
  const auto result = b.Build();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilderTest, RejectsSelfLoopByDefault) {
  GraphBuilder b(3);
  b.AddEdge(1, 1);
  EXPECT_FALSE(b.Build().ok());
}

TEST(GraphBuilderTest, IgnoresSelfLoopWhenConfigured) {
  GraphBuilder b(3);
  b.set_ignore_self_loops(true);
  b.AddEdge(1, 1);
  b.AddEdge(0, 1);
  const auto result = b.Build();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_edges(), 1u);
}

TEST(GraphBuilderTest, RejectsDuplicateByDefault) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);  // same undirected edge
  EXPECT_FALSE(b.Build().ok());
}

TEST(GraphBuilderTest, MergesDuplicatesKeepingMinWeight) {
  GraphBuilder b(3);
  b.set_merge_duplicates(true);
  b.AddWeightedEdge(0, 1, 5.0);
  b.AddWeightedEdge(1, 0, 2.0);
  const auto result = b.Build();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_edges(), 1u);
  EXPECT_DOUBLE_EQ(result.value().EdgeWeight(0, 1), 2.0);
}

TEST(GraphBuilderTest, RejectsNonPositiveWeight) {
  GraphBuilder zero(2);
  zero.AddWeightedEdge(0, 1, 0.0);
  EXPECT_FALSE(zero.Build().ok());
  GraphBuilder negative(2);
  negative.AddWeightedEdge(0, 1, -1.0);
  EXPECT_FALSE(negative.Build().ok());
}

TEST(GraphBuilderTest, FirstErrorWins) {
  GraphBuilder b(2);
  b.AddEdge(0, 5);   // out of range
  b.AddEdge(1, 1);   // self loop (later)
  const auto result = b.Build();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("out of range"), std::string::npos);
}

TEST(GraphBuilderTest, EmptyGraphBuilds) {
  GraphBuilder b(5);
  const auto result = b.Build();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_vertices(), 5u);
  EXPECT_EQ(result.value().num_edges(), 0u);
}

TEST(GraphBuilderTest, MixedWeightedUnweightedBecomesWeighted) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);                // weight 1
  b.AddWeightedEdge(1, 2, 3.0);
  const auto result = b.Build();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().weighted());
  EXPECT_DOUBLE_EQ(result.value().EdgeWeight(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(result.value().EdgeWeight(1, 2), 3.0);
}

TEST(GraphBuilderTest, PendingEdgeCount) {
  GraphBuilder b(4);
  EXPECT_EQ(b.num_pending_edges(), 0u);
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);
  EXPECT_EQ(b.num_pending_edges(), 2u);
}

TEST(GraphBuilderTest, LargeStarDegrees) {
  constexpr VertexId kN = 1000;
  GraphBuilder b(kN);
  for (VertexId v = 1; v < kN; ++v) b.AddEdge(0, v);
  const auto result = b.Build();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().degree(0), kN - 1);
  EXPECT_EQ(result.value().degree(kN - 1), 1u);
}

}  // namespace
}  // namespace mhbc
