#include "core/variance.h"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/uniform_sampler.h"
#include "exact/brandes.h"
#include "graph/generators.h"
#include "sp/distance.h"
#include "util/stats.h"

namespace mhbc {
namespace {

TEST(VarianceTest, OptimalIsZero) {
  const CsrGraph g = MakeBarabasiAlbert(40, 2, 3);
  for (VertexId r = 0; r < 8; ++r) {
    const auto profile = DependencyProfile(g, r);
    double total = 0.0;
    for (double d : profile) total += d;
    if (total == 0.0) continue;
    EXPECT_NEAR(OptimalSamplerVariance(profile), 0.0, 1e-15) << "r=" << r;
  }
}

TEST(VarianceTest, UniformHandComputed) {
  // Profile [2, 0, 2] (n=3): BC = 4/6. X = delta/(p*6) with p = 1/3:
  // X in {1, 0, 1}; E[X^2] = 2/3; Var = 2/3 - 4/9 = 2/9.
  const std::vector<double> profile{2.0, 0.0, 2.0};
  EXPECT_NEAR(UniformSamplerVariance(profile), 2.0 / 9.0, 1e-12);
}

TEST(VarianceTest, UniformZeroOnFlatProfile) {
  // All sources identical: every sample returns BC exactly.
  const std::vector<double> flat{3.0, 3.0, 3.0, 3.0};
  EXPECT_NEAR(UniformSamplerVariance(flat), 0.0, 1e-15);
}

TEST(VarianceTest, OptimalNeverWorseThanUniformOrDistance) {
  const CsrGraph g = MakeConnectedCaveman(4, 8);
  for (VertexId r : {VertexId{7}, VertexId{15}, VertexId{0}}) {
    const auto profile = DependencyProfile(g, r);
    const auto dist = BfsDistances(g, r);
    std::vector<double> weights(profile.size(), 0.0);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (v != r) weights[v] = static_cast<double>(dist[v]);
    }
    const double uniform = UniformSamplerVariance(profile);
    const double distance = WeightedSamplerVariance(profile, weights);
    const double optimal = OptimalSamplerVariance(profile);
    EXPECT_LE(optimal, uniform + 1e-15);
    EXPECT_LE(optimal, distance + 1e-15);
  }
}

TEST(VarianceTest, PredictsEmpiricalUniformSamplerSpread) {
  // The analytic per-sample variance must match the observed variance of
  // k-sample uniform estimates: Var_k = Var_1 / k.
  const CsrGraph g = MakeBarbell(5, 1);
  const VertexId bridge = 5;
  const auto profile = DependencyProfile(g, bridge);
  const double per_sample = UniformSamplerVariance(profile);
  constexpr std::uint64_t kSamples = 32;
  constexpr int kReps = 600;
  UniformSourceSampler sampler(g, 99);
  RunningStats observed;
  for (int rep = 0; rep < kReps; ++rep) {
    observed.Add(sampler.Estimate(bridge, kSamples));
  }
  const double predicted = per_sample / static_cast<double>(kSamples);
  EXPECT_NEAR(observed.variance(), predicted, 0.25 * predicted);
}

TEST(VarianceTest, ChainStationaryVarianceFlatSupport) {
  // pi-weighted variance of f: zero when delta is constant on the support
  // (pi never visits zero-delta states).
  const std::vector<double> profile{4.0, 4.0, 0.0, 4.0};
  EXPECT_NEAR(ChainStationaryVariance(profile), 0.0, 1e-15);
}

TEST(VarianceTest, ChainStationaryVarianceHandComputed) {
  // Profile [1, 3] (n=2): pi = [1/4, 3/4], f = delta/(n-1) = [1, 3].
  // E[f] = 1/4 + 9/4 = 2.5; E[f^2] = 1/4 + 27/4 = 7; Var = 0.75.
  const std::vector<double> profile{1.0, 3.0};
  EXPECT_NEAR(ChainStationaryVariance(profile), 0.75, 1e-12);
}

TEST(VarianceTest, WeightsAlignedWithProfileBeatUniform) {
  // Weighting proportional to the dependency profile IS the optimal
  // distribution: variance collapses to zero, strictly beating uniform on
  // any non-flat profile. Misaligned (inverted) weights do worse than
  // uniform — the mechanism behind [13]'s sampler design.
  const std::vector<double> profile{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> aligned = profile;
  const std::vector<double> inverted{4.0, 3.0, 2.0, 1.0};
  const double uniform = UniformSamplerVariance(profile);
  EXPECT_NEAR(WeightedSamplerVariance(profile, aligned), 0.0, 1e-15);
  EXPECT_GT(uniform, 0.0);
  EXPECT_GT(WeightedSamplerVariance(profile, inverted), uniform);
}

TEST(VarianceTest, FlatSupportClosedForm) {
  // Every source has the same dependency on a path's center (the 10
  // cross-side targets), zero only at the center itself. For such
  // flat-on-support profiles the uniform sampler's variance has the closed
  // form BC^2 * (n - k)/k with k = |support|.
  const CsrGraph g = MakePath(21);
  const auto profile = DependencyProfile(g, 10);
  const double bc = ExactBetweennessSingle(g, 10);
  const double n = 21.0, k = 20.0;
  EXPECT_NEAR(UniformSamplerVariance(profile), bc * bc * (n - k) / k, 1e-12);
}

}  // namespace
}  // namespace mhbc
