#include "centrality/api.h"

#include <gtest/gtest.h>

#include "exact/brandes.h"
#include "graph/generators.h"

namespace mhbc {
namespace {

TEST(ApiTest, ExactKindMatchesBrandes) {
  const CsrGraph g = MakeBarbell(4, 1);
  EstimateOptions options;
  options.kind = EstimatorKind::kExact;
  const auto result = EstimateBetweenness(g, 4, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().value, ExactBetweennessSingle(g, 4), 1e-12);
  EXPECT_EQ(result.value().sp_passes, g.num_vertices());
}

TEST(ApiTest, EverySamplingKindRuns) {
  const CsrGraph g = MakeBarbell(5, 1);
  const double exact = ExactBetweennessSingle(g, 5);
  for (EstimatorKind kind :
       {EstimatorKind::kMetropolisHastings, EstimatorKind::kUniformSource,
        EstimatorKind::kDistanceProportional, EstimatorKind::kShortestPath,
        EstimatorKind::kLinearScaling}) {
    EstimateOptions options;
    options.kind = kind;
    options.samples = 4'000;
    options.seed = 77;
    const auto result = EstimateBetweenness(g, 5, options);
    ASSERT_TRUE(result.ok()) << EstimatorKindName(kind);
    EXPECT_NEAR(result.value().value, exact, 0.15 * exact)
        << EstimatorKindName(kind);
    EXPECT_GT(result.value().sp_passes, 0u);
  }
}

TEST(ApiTest, RejectsOutOfRangeVertex) {
  const CsrGraph g = MakeCycle(6);
  EstimateOptions options;
  const auto result = EstimateBetweenness(g, 6, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ApiTest, RejectsZeroBudget) {
  const CsrGraph g = MakeCycle(6);
  EstimateOptions options;
  options.samples = 0;
  EXPECT_FALSE(EstimateBetweenness(g, 0, options).ok());
}

TEST(ApiTest, RejectsTrivialGraph) {
  const CsrGraph g = MakePath(1);
  EstimateOptions options;
  EXPECT_FALSE(EstimateBetweenness(g, 0, options).ok());
}

TEST(ApiTest, RejectsUnsupportedWeightedEstimators) {
  const CsrGraph wg = AssignUniformWeights(MakeCycle(8), 1.0, 2.0, 5);
  EstimateOptions options;
  options.kind = EstimatorKind::kLinearScaling;
  EXPECT_FALSE(EstimateBetweenness(wg, 0, options).ok());
  // MH and RK support weighted graphs.
  for (EstimatorKind kind :
       {EstimatorKind::kMetropolisHastings, EstimatorKind::kShortestPath}) {
    options.kind = kind;
    options.samples = 50;
    EXPECT_TRUE(EstimateBetweenness(wg, 0, options).ok());
  }
}

TEST(ApiTest, RelativeBetweennessValidation) {
  const CsrGraph g = MakeCycle(8);
  EXPECT_FALSE(EstimateRelativeBetweenness(g, {0}, 100).ok());
  EXPECT_FALSE(EstimateRelativeBetweenness(g, {0, 9}, 100).ok());
  EXPECT_FALSE(EstimateRelativeBetweenness(g, {0, 0}, 100).ok());
  EXPECT_FALSE(EstimateRelativeBetweenness(g, {0, 4}, 0).ok());
  EXPECT_TRUE(EstimateRelativeBetweenness(g, {0, 4}, 100).ok());
}

TEST(ApiTest, RankByBetweennessOrdersBridgeFirst) {
  const CsrGraph g = MakeBarbell(5, 1);
  // Gateway, bridge, gateway: all positive betweenness, bridge largest.
  const std::vector<VertexId> targets{4, 5, 6};
  const auto result = RankByBetweenness(g, targets, 20'000, 99);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().front(), 1u);  // index of the bridge in targets
}

TEST(ApiTest, EstimatorKindNamesRoundTrip) {
  // Every kind — AllEstimatorKinds() is the canonical list, so a newly
  // added estimator is covered (or fails here) automatically.
  for (EstimatorKind kind : AllEstimatorKinds()) {
    EstimatorKind parsed;
    ASSERT_TRUE(ParseEstimatorKind(EstimatorKindName(kind), &parsed))
        << EstimatorKindName(kind);
    EXPECT_EQ(parsed, kind);
  }
  EstimatorKind parsed;
  EXPECT_FALSE(ParseEstimatorKind("nonsense", &parsed));
  EXPECT_FALSE(ParseEstimatorKind("", &parsed));
  EXPECT_FALSE(ParseEstimatorKind("unknown", &parsed));
}

TEST(ApiTest, RankOrderFromScoresBreaksTiesByInputOrder) {
  // The documented stable_sort contract: equal scores keep input order.
  const std::vector<double> scores{2.0, 5.0, 2.0, 7.0, 2.0};
  const std::vector<std::size_t> order = RankOrderFromScores(scores);
  const std::vector<std::size_t> expected{3, 1, 0, 2, 4};
  EXPECT_EQ(order, expected);
  EXPECT_TRUE(RankOrderFromScores({}).empty());
  const std::vector<std::size_t> all_tied = RankOrderFromScores({1.0, 1.0, 1.0});
  const std::vector<std::size_t> identity{0, 1, 2};
  EXPECT_EQ(all_tied, identity);
}

}  // namespace
}  // namespace mhbc
