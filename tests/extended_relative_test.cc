#include "exact/extended_relative.h"

#include <gtest/gtest.h>

#include "core/theory.h"
#include "exact/brandes.h"
#include "graph/generators.h"

namespace mhbc {
namespace {

TEST(ExtendedRelativeTest, SymmetricTargetsGiveSameScoreBothWays) {
  // Two symmetric bridge vertices: the extension is symmetric under swap.
  const CsrGraph g = MakeBarbell(4, 2);
  const double ij = ExactExtendedRelativeBetweenness(g, 4, 5);
  const double ji = ExactExtendedRelativeBetweenness(g, 5, 4);
  EXPECT_NEAR(ij, ji, 1e-12);
}

TEST(ExtendedRelativeTest, PathHandComputed) {
  // P4 = 0-1-2-3, ri = 1, rj = 2. Pair dependencies are 0/1 indicators
  // (unique shortest paths). For each ordered (v, t):
  //   through 1: (0,2),(0,3),(2,0),(3,0),(2,3)?no... pairs through 1:
  //   (0,2),(0,3),(3,0),(2,0). Through 2: (0,3),(1,3),(3,0),(3,1).
  // ClippedRatio(a, b) with 0/0 -> 1 applies to all remaining pairs.
  const CsrGraph g = MakePath(4);
  // Enumerate: n(n-1) = 12 ordered pairs. dep1/dep2 per pair:
  // (0,1):0/0->1 (0,2):1/0->1 (0,3):1/1->1 (1,0):0/0->1 (1,2):0/0->1
  // (1,3):0/1->0 (2,0):1/0->1 (2,1):0/0->1 (2,3):0/0->1 (3,0):1/1->1
  // (3,1):0/1->0 (3,2):0/0->1
  // sum = 10, BC' = 10/12.
  EXPECT_NEAR(ExactExtendedRelativeBetweenness(g, 1, 2), 10.0 / 12.0, 1e-12);
}

TEST(ExtendedRelativeTest, IdenticalRoleVerticesScoreHigh) {
  // Star center vs itself is disallowed; compare two wheel rim vertices:
  // nearly interchangeable roles, so BC' in both directions is close to
  // the both-zero-dominated baseline and roughly equal.
  const CsrGraph g = MakeWheel(10);
  const double ij = ExactExtendedRelativeBetweenness(g, 1, 5);
  const double ji = ExactExtendedRelativeBetweenness(g, 5, 1);
  EXPECT_NEAR(ij, ji, 1e-9);
  EXPECT_GT(ij, 0.5);
}

TEST(ExtendedRelativeTest, DominantVertexScoresHigherThanDominated) {
  // Path center strictly dominates a quarter vertex pairwise, so
  // BC'(center | quarter) > BC'(quarter | center).
  const CsrGraph g = MakePath(9);
  const double center_vs_quarter = ExactExtendedRelativeBetweenness(g, 4, 2);
  const double quarter_vs_center = ExactExtendedRelativeBetweenness(g, 2, 4);
  EXPECT_GT(center_vs_quarter, quarter_vs_center);
}

TEST(ExtendedRelativeTest, BoundedByOne) {
  const CsrGraph g = MakeBarabasiAlbert(30, 2, 5);
  for (VertexId ri = 0; ri < 3; ++ri) {
    for (VertexId rj = 3; rj < 6; ++rj) {
      const double score = ExactExtendedRelativeBetweenness(g, ri, rj);
      EXPECT_GE(score, 0.0);
      EXPECT_LE(score, 1.0);
    }
  }
}

}  // namespace
}  // namespace mhbc
