#include "baselines/geisberger_sampler.h"

#include <gtest/gtest.h>

#include "exact/brandes.h"
#include "graph/generators.h"

namespace mhbc {
namespace {

TEST(GeisbergerSamplerTest, ConvergesOnBarbellBridge) {
  const CsrGraph g = MakeBarbell(5, 1);
  const VertexId bridge = 5;
  const double exact = ExactBetweennessSingle(g, bridge);
  GeisbergerSampler sampler(g, 3);
  EXPECT_NEAR(sampler.Estimate(bridge, 15'000), exact, 0.02 * exact + 0.01);
}

TEST(GeisbergerSamplerTest, FullEnumerationIsNearExact) {
  // Sampling every vertex once as source: the estimator's expectation is
  // exact, and with all n sources the average equals the expectation.
  const CsrGraph g = MakeGrid(4, 4);
  const auto exact = ExactBetweenness(g);
  GeisbergerSampler sampler(g, 5);
  // Large budget ~ exhaustive uniform coverage.
  for (VertexId v : {VertexId{5}, VertexId{6}, VertexId{9}}) {
    EXPECT_NEAR(sampler.Estimate(v, 30'000), exact[v], 0.02);
  }
}

TEST(GeisbergerSamplerTest, ZeroForLeaf) {
  const CsrGraph g = MakeStar(9);
  GeisbergerSampler sampler(g, 7);
  EXPECT_DOUBLE_EQ(sampler.Estimate(4, 1'000), 0.0);
}

TEST(GeisbergerSamplerTest, DeterministicForSeed) {
  const CsrGraph g = MakeBarabasiAlbert(50, 2, 9);
  GeisbergerSampler a(g, 77);
  GeisbergerSampler b(g, 77);
  EXPECT_DOUBLE_EQ(a.Estimate(2, 300), b.Estimate(2, 300));
}

TEST(GeisbergerSamplerTest, PassAccounting) {
  const CsrGraph g = MakeCycle(8);
  GeisbergerSampler sampler(g, 11);
  sampler.Estimate(1, 60);
  EXPECT_EQ(sampler.num_passes(), 60u);
}

TEST(GeisbergerSamplerTest, UnbiasedAcrossRepetitions) {
  const CsrGraph g = MakePath(9);
  const VertexId center = 4;
  const double exact = ExactBetweennessSingle(g, center);
  GeisbergerSampler sampler(g, 13);
  double acc = 0.0;
  constexpr int kReps = 400;
  for (int i = 0; i < kReps; ++i) acc += sampler.Estimate(center, 8);
  EXPECT_NEAR(acc / kReps, exact, 0.05 * exact + 0.01);
}

}  // namespace
}  // namespace mhbc
