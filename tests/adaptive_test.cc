#include "core/adaptive.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/theory.h"
#include "exact/brandes.h"
#include "graph/generators.h"

namespace mhbc {
namespace {

TEST(AdaptiveTest, ConvergesOnSeparatorTarget) {
  const CsrGraph g = MakeBarbell(10, 1);
  const VertexId bridge = 10;
  AdaptiveOptions options;
  options.seed = 3;
  options.epsilon = 0.02;
  const AdaptiveResult result = AdaptiveMhEstimate(g, bridge, options);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.half_width, options.epsilon);
  const double limit = ChainLimitEstimate(DependencyProfile(g, bridge));
  EXPECT_NEAR(result.estimate, limit, 3 * options.epsilon);
}

TEST(AdaptiveTest, TighterEpsilonCostsMoreIterations) {
  const CsrGraph g = MakeConnectedCaveman(5, 8);
  const VertexId gateway = 7;
  AdaptiveOptions loose;
  loose.seed = 5;
  loose.epsilon = 0.1;
  AdaptiveOptions tight = loose;
  tight.epsilon = 0.01;
  const AdaptiveResult a = AdaptiveMhEstimate(g, gateway, loose);
  const AdaptiveResult b = AdaptiveMhEstimate(g, gateway, tight);
  EXPECT_TRUE(a.converged);
  EXPECT_TRUE(b.converged);
  EXPECT_GE(b.iterations, a.iterations);
}

TEST(AdaptiveTest, RespectsMaxIterationCap) {
  const CsrGraph g = MakeBarabasiAlbert(100, 2, 7);
  AdaptiveOptions options;
  options.seed = 9;
  options.epsilon = 1e-9;  // unreachable precision
  options.max_iterations = 512;
  const AdaptiveResult result = AdaptiveMhEstimate(g, 0, options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 512u);
}

TEST(AdaptiveTest, ZeroScoreTargetConvergesImmediately) {
  // All f-values are 0: the CI collapses at the first batch.
  const CsrGraph g = MakeStar(12);
  AdaptiveOptions options;
  options.seed = 11;
  options.epsilon = 0.05;
  const AdaptiveResult result = AdaptiveMhEstimate(g, /*leaf=*/3, options);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, options.initial_batch);
  EXPECT_DOUBLE_EQ(result.estimate, 0.0);
}

TEST(AdaptiveTest, DeterministicForSeed) {
  const CsrGraph g = MakeConnectedCaveman(4, 6);
  AdaptiveOptions options;
  options.seed = 13;
  options.epsilon = 0.05;
  const AdaptiveResult a = AdaptiveMhEstimate(g, 5, options);
  const AdaptiveResult b = AdaptiveMhEstimate(g, 5, options);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_DOUBLE_EQ(a.estimate, b.estimate);
}

}  // namespace
}  // namespace mhbc
