// Drives the mhbc_lint rule engine (tools/lint/) in-process against the
// golden fixtures in tests/lint_fixtures/: each rule fires exactly once on
// its fixture, the clean fixture stays clean, suppression round-trips, and
// the real tree lints clean under the shipped config.
//
// The build defines MHBC_LINT_FIXTURES (the fixture directory) and
// MHBC_REPO_ROOT (the source tree the integration test walks).

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.h"

namespace {

using mhbc::lint::Config;
using mhbc::lint::DefaultConfig;
using mhbc::lint::Finding;
using mhbc::lint::GlobMatch;
using mhbc::lint::IsSuppressed;
using mhbc::lint::LexSource;
using mhbc::lint::LintFile;
using mhbc::lint::LintTree;
using mhbc::lint::LoadConfig;
using mhbc::lint::LoadTree;
using mhbc::lint::Rules;
using mhbc::lint::Severity;
using mhbc::lint::SourceFile;

std::string ReadFixture(const std::string& name) {
  std::ifstream in(std::string(MHBC_LINT_FIXTURES) + "/" + name);
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Lints fixture `name` as if it lived at `as_path` (no allowlists, so the
/// fixtures fire regardless of the shipped config).
std::vector<Finding> LintFixture(const std::string& name,
                                 const std::string& as_path) {
  const SourceFile file = LexSource(as_path, ReadFixture(name));
  return LintFile(file, DefaultConfig());
}

void ExpectSingleFinding(const std::vector<Finding>& findings,
                         const std::string& rule) {
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, rule);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_GT(findings[0].line, 0);
  EXPECT_FALSE(findings[0].message.empty());
  EXPECT_FALSE(findings[0].fixit.empty());
}

TEST(LintRegistry, SixRulesWithUniqueIds) {
  const auto& rules = Rules();
  ASSERT_EQ(rules.size(), 6u);
  std::vector<std::string> ids;
  for (const auto& rule : rules) {
    EXPECT_EQ(rule.id.rfind("mhbc-", 0), 0u) << rule.id;
    EXPECT_FALSE(rule.summary.empty());
    EXPECT_FALSE(rule.fixit.empty());
    ids.push_back(rule.id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
}

TEST(LintFixtures, BannedNondeterminismFiresOnce) {
  ExpectSingleFinding(
      LintFixture("banned_nondeterminism.cc", "src/core/fixture.cc"),
      "mhbc-banned-nondeterminism");
}

TEST(LintFixtures, UnorderedAccumulationFiresOnce) {
  ExpectSingleFinding(
      LintFixture("unordered_accumulation.cc", "src/core/fixture.cc"),
      "mhbc-unordered-accumulation");
}

TEST(LintFixtures, RawConcurrencyFiresOnce) {
  ExpectSingleFinding(LintFixture("raw_concurrency.cc", "src/sp/fixture.cc"),
                      "mhbc-raw-concurrency");
}

TEST(LintFixtures, LayeringFiresOnceFromUtil) {
  ExpectSingleFinding(LintFixture("layering.cc", "src/util/fixture.cc"),
                      "mhbc-layering");
}

TEST(LintFixtures, LayeringIsCleanDownwardAndSameLayer) {
  // The identical include is legal from core (core sits above util) …
  EXPECT_TRUE(LintFixture("layering.cc", "src/core/fixture.cc").empty());
  // … and a same-layer include is always legal.
  const SourceFile same =
      LexSource("src/util/fixture.cc", "#include \"util/stats.h\"\n");
  EXPECT_TRUE(LintFile(same, DefaultConfig()).empty());
}

TEST(LintFixtures, HeaderGuardFiresOnce) {
  const auto findings =
      LintFixture("header_guard.h", "src/util/fixture.h");
  ExpectSingleFinding(findings, "mhbc-header-guard");
  EXPECT_EQ(findings[0].line, 1);
  // The same content as a .cc is not a header and passes.
  EXPECT_TRUE(LintFixture("header_guard.h", "src/util/fixture.cc").empty());
}

TEST(LintFixtures, ExitPathsFiresOnceOutsideMain) {
  // std::exit in a helper fires; the BailFixture() call inside main() and
  // main's own return path stay silent.
  ExpectSingleFinding(LintFixture("exit_paths.cc", "src/exact/fixture.cc"),
                      "mhbc-exit-paths");
}

TEST(LintFixtures, CleanFixtureIsClean) {
  EXPECT_TRUE(LintFixture("clean.cc", "examples/fixture.cc").empty());
}

TEST(LintSuppression, RoundTrip) {
  // As written every violation carries a NOLINT marker: zero findings.
  const std::string content = ReadFixture("suppressed.cc");
  EXPECT_TRUE(
      LintFile(LexSource("src/core/fixture.cc", content), DefaultConfig())
          .empty());

  // Strip the markers and the three rand() calls come back.
  std::string stripped = content;
  for (const char* marker :
       {"// NOLINTNEXTLINE(mhbc-banned-nondeterminism)",
        "// NOLINT(mhbc-banned-nondeterminism)", "// NOLINT"}) {
    for (std::size_t pos = stripped.find(marker); pos != std::string::npos;
         pos = stripped.find(marker)) {
      stripped.erase(pos, std::string(marker).size());
    }
  }
  const auto findings =
      LintFile(LexSource("src/core/fixture.cc", stripped), DefaultConfig());
  ASSERT_EQ(findings.size(), 3u);
  for (const auto& finding : findings) {
    EXPECT_EQ(finding.rule, "mhbc-banned-nondeterminism");
  }
}

TEST(LintSuppression, IsSuppressedSemantics) {
  const SourceFile file = LexSource(
      "src/core/fixture.cc",
      "int a = rand();  // NOLINT(mhbc-banned-nondeterminism)\n"
      "// NOLINTNEXTLINE(mhbc-exit-paths, mhbc-layering)\n"
      "int b = 0;\n"
      "int c = 0;  // NOLINT\n"
      "int d = 0;  // NOLINT(*)\n"
      "int e = 0;\n");
  EXPECT_TRUE(IsSuppressed(file, "mhbc-banned-nondeterminism", 1));
  EXPECT_FALSE(IsSuppressed(file, "mhbc-exit-paths", 1));
  // NOLINTNEXTLINE applies to line 3, not its own line, and lists compose.
  EXPECT_TRUE(IsSuppressed(file, "mhbc-exit-paths", 3));
  EXPECT_TRUE(IsSuppressed(file, "mhbc-layering", 3));
  EXPECT_FALSE(IsSuppressed(file, "mhbc-exit-paths", 2));
  // Bare NOLINT and the * wildcard silence every rule on that line.
  EXPECT_TRUE(IsSuppressed(file, "mhbc-raw-concurrency", 4));
  EXPECT_TRUE(IsSuppressed(file, "mhbc-raw-concurrency", 5));
  EXPECT_FALSE(IsSuppressed(file, "mhbc-raw-concurrency", 6));
}

TEST(LintConfig, GlobSemantics) {
  EXPECT_TRUE(GlobMatch("src/*", "src/util/foo.h"));  // '*' crosses '/'
  EXPECT_TRUE(GlobMatch("src/*.h", "src/util/foo.h"));
  EXPECT_TRUE(GlobMatch("src/util/timer.h", "src/util/timer.h"));
  EXPECT_TRUE(GlobMatch("tests/lint_fixtures/*", "tests/lint_fixtures/a.cc"));
  EXPECT_FALSE(GlobMatch("src/*.cc", "src/util/foo.h"));
  EXPECT_FALSE(GlobMatch("bench/*", "src/util/foo.h"));
}

TEST(LintConfig, DefaultLayerRanking) {
  const Config config = DefaultConfig();
  EXPECT_EQ(config.LayerRank("util"), 0);
  EXPECT_LT(config.LayerRank("graph"), config.LayerRank("exact"));
  EXPECT_LT(config.LayerRank("sp"), config.LayerRank("core"));
  EXPECT_EQ(config.LayerRank("core"), config.LayerRank("baselines"));
  EXPECT_LT(config.LayerRank("core"), config.LayerRank("centrality"));
  EXPECT_EQ(config.LayerRank("nonsense"), -1);
}

TEST(LintConfig, ShippedConfigParsesAndCoversTheExceptions) {
  auto loaded =
      LoadConfig(std::string(MHBC_REPO_ROOT) + "/tools/lint/mhbc_lint.conf");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Config config = std::move(loaded).value();
  EXPECT_TRUE(config.Skipped("tests/lint_fixtures/clean.cc"));
  EXPECT_TRUE(
      config.Allows("mhbc-raw-concurrency", "", "src/util/thread_pool.cc"));
  EXPECT_TRUE(config.Allows("mhbc-banned-nondeterminism", "wall-clock",
                            "src/util/timer.h"));
  EXPECT_FALSE(config.Allows("mhbc-banned-nondeterminism", "wall-clock",
                             "src/core/mh_chain.cc"));
}

TEST(LintTreeRules, DetectsIncludeCycles) {
  const std::vector<SourceFile> files = {
      LexSource("src/util/a.h", "#pragma once\n#include \"util/b.h\"\n"),
      LexSource("src/util/b.h", "#pragma once\n#include \"util/a.h\"\n"),
  };
  const auto findings = LintTree(files, DefaultConfig());
  ASSERT_FALSE(findings.empty());
  bool saw_cycle = false;
  for (const auto& finding : findings) {
    saw_cycle = saw_cycle || (finding.rule == "mhbc-layering" &&
                              finding.message.find("cycle") !=
                                  std::string::npos);
  }
  EXPECT_TRUE(saw_cycle);
}

// Integration: the real tree lints clean under the shipped config. This is
// the in-process twin of the mhbc_lint_tree ctest entry, so a regression
// shows up even when only the gtest suite runs.
TEST(LintTreeRules, RepoIsClean) {
  auto loaded =
      LoadConfig(std::string(MHBC_REPO_ROOT) + "/tools/lint/mhbc_lint.conf");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Config config = std::move(loaded).value();
  auto tree = LoadTree(MHBC_REPO_ROOT, config);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  const auto findings = LintTree(tree.value(), config);
  for (const auto& finding : findings) {
    ADD_FAILURE() << finding.path << ":" << finding.line << ": ["
                  << finding.rule << "] " << finding.message;
  }
}

}  // namespace
