#include "centrality/engine.h"

#include <gtest/gtest.h>

#include <cmath>

#include "centrality/api.h"
#include "exact/brandes.h"
#include "graph/generators.h"

namespace mhbc {
namespace {

// ----------------------------------------------------------- registry

TEST(EstimatorRegistryTest, CoversEveryKindInCanonicalOrder) {
  const std::vector<EstimatorEntry>& registry = EstimatorRegistry();
  ASSERT_EQ(registry.size(), AllEstimatorKinds().size());
  for (std::size_t i = 0; i < registry.size(); ++i) {
    EXPECT_EQ(registry[i].kind, AllEstimatorKinds()[i]);
    EXPECT_STREQ(registry[i].name, EstimatorKindName(registry[i].kind));
  }
}

TEST(EstimatorRegistryTest, LookupByKindAndNameAgree) {
  for (EstimatorKind kind : AllEstimatorKinds()) {
    const EstimatorEntry* by_kind = FindEstimator(kind);
    ASSERT_NE(by_kind, nullptr);
    const EstimatorEntry* by_name = FindEstimator(std::string(by_kind->name));
    ASSERT_NE(by_name, nullptr);
    EXPECT_EQ(by_name->kind, kind);
  }
  EXPECT_EQ(FindEstimator(std::string("nonsense")), nullptr);
}

TEST(EstimatorRegistryTest, WeightedSupportMatchesValidation) {
  const CsrGraph wg = AssignUniformWeights(MakeCycle(8), 1.0, 2.0, 5);
  BetweennessEngine engine(wg);
  for (const EstimatorEntry& entry : EstimatorRegistry()) {
    EstimateRequest request;
    request.kind = entry.kind;
    request.samples = 20;
    EXPECT_EQ(engine.Estimate(0, request).ok(), entry.supports_weighted)
        << entry.name;
  }
}

// ------------------------------------------------- cache amortization

TEST(EngineTest, SecondVertexCostsFewerPassesThanFreeFunctions) {
  // The acceptance bar of the engine design: one engine serving two
  // vertices beats two independent one-shot calls on total passes,
  // because one pass from source v yields delta_v(.) for EVERY target.
  const CsrGraph g = MakeConnectedCaveman(6, 10);
  const VertexId v1 = 9, v2 = 19;
  for (EstimatorKind kind : {EstimatorKind::kDistanceProportional,
                             EstimatorKind::kMetropolisHastings}) {
    EstimateOptions options;
    options.kind = kind;
    options.samples = 400;
    options.seed = 7;
    const auto free1 = EstimateBetweenness(g, v1, options);
    const auto free2 = EstimateBetweenness(g, v2, options);
    ASSERT_TRUE(free1.ok() && free2.ok());
    const std::uint64_t free_total =
        free1.value().sp_passes + free2.value().sp_passes;

    BetweennessEngine engine(g);
    EstimateRequest request;
    request.kind = kind;
    request.samples = 400;
    request.seed = 7;
    const auto session1 = engine.Estimate(v1, request);
    const auto session2 = engine.Estimate(v2, request);
    ASSERT_TRUE(session1.ok() && session2.ok());
    const std::uint64_t session_total =
        session1.value().sp_passes + session2.value().sp_passes;

    EXPECT_LT(session_total, free_total) << EstimatorKindName(kind);
    EXPECT_LT(session2.value().sp_passes, session1.value().sp_passes)
        << EstimatorKindName(kind);
    EXPECT_TRUE(session2.value().cache_hit) << EstimatorKindName(kind);
    // Caching changes work, never values: each engine query matches its
    // one-shot twin exactly.
    EXPECT_DOUBLE_EQ(session1.value().value, free1.value().value);
    EXPECT_DOUBLE_EQ(session2.value().value, free2.value().value);
  }
}

TEST(EngineTest, RepeatedQueryIsServedFromCaches) {
  const CsrGraph g = MakeConnectedCaveman(5, 8);
  BetweennessEngine engine(g);
  EstimateRequest request;
  request.kind = EstimatorKind::kDistanceProportional;
  request.samples = 300;
  request.seed = 21;
  const auto first = engine.Estimate(10, request);
  const auto second = engine.Estimate(10, request);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_DOUBLE_EQ(second.value().value, first.value().value);
  EXPECT_EQ(second.value().sp_passes, 0u);  // every source memoized
  EXPECT_TRUE(second.value().cache_hit);
}

TEST(EngineTest, ExactScoresComputedOnceServeEveryVertex) {
  const CsrGraph g = MakeBarbell(5, 1);
  BetweennessEngine engine(g);
  EstimateRequest request;
  request.kind = EstimatorKind::kExact;
  const auto first = engine.Estimate(4, request);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().sp_passes, g.num_vertices());
  EXPECT_NEAR(first.value().value, ExactBetweennessSingle(g, 4), 1e-12);

  const auto second = engine.Estimate(5, request);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().sp_passes, 0u);
  EXPECT_TRUE(second.value().cache_hit);
  EXPECT_NEAR(second.value().value, ExactBetweennessSingle(g, 5), 1e-12);
}

TEST(EngineTest, RkCreditVectorIsSharedAcrossVertices) {
  const CsrGraph g = MakeConnectedCaveman(4, 8);
  BetweennessEngine engine(g);
  EstimateRequest request;
  request.kind = EstimatorKind::kShortestPath;
  request.samples = 500;
  request.seed = 3;
  const auto reports = engine.EstimateMany({7, 15, 23}, request);
  ASSERT_TRUE(reports.ok());
  ASSERT_EQ(reports.value().size(), 3u);
  EXPECT_EQ(reports.value()[0].sp_passes, 500u);
  EXPECT_EQ(reports.value()[1].sp_passes, 0u);  // served from the vector
  EXPECT_EQ(reports.value()[2].sp_passes, 0u);
  EXPECT_TRUE(reports.value()[1].cache_hit);
  // Cached serves agree with a fresh engine paying full price.
  BetweennessEngine fresh(g);
  const auto direct = fresh.Estimate(15, request);
  ASSERT_TRUE(direct.ok());
  EXPECT_DOUBLE_EQ(reports.value()[1].value, direct.value().value);
}

TEST(EngineTest, JointResultCacheServesScoresAndRanking) {
  const CsrGraph g = MakeBarbell(5, 1);
  BetweennessEngine engine(g);
  const std::vector<VertexId> targets{4, 5, 6};
  const auto joint = engine.EstimateRelative(targets, 5'000, 99);
  ASSERT_TRUE(joint.ok());
  const std::uint64_t passes_after_joint = engine.total_sp_passes();
  const auto ranking = engine.RankTargets(targets, 5'000, 99);
  ASSERT_TRUE(ranking.ok());
  // The ranking came from the cached joint result — no new chain.
  EXPECT_EQ(engine.total_sp_passes(), passes_after_joint);
  EXPECT_EQ(ranking.value(),
            RankOrderFromScores(joint.value().copeland_scores));
  EXPECT_EQ(ranking.value().front(), 1u);  // the bridge out-ranks gateways
}

// -------------------------------------------------------- determinism

TEST(EngineTest, FixedSeedsReproduceIdenticalReports) {
  const CsrGraph g = MakeConnectedCaveman(5, 8);
  for (EstimatorKind kind : AllEstimatorKinds()) {
    EstimateRequest request;
    request.kind = kind;
    request.samples = 250;
    request.seed = 0xD5;
    BetweennessEngine a(g);
    BetweennessEngine b(g);
    // Warm b with an unrelated query first: caches must not leak into
    // the reported values.
    EstimateRequest warmup = request;
    warmup.seed = 0xF00;
    ASSERT_TRUE(b.Estimate(3, warmup).ok());
    const auto from_a = a.Estimate(12, request);
    const auto from_b = b.Estimate(12, request);
    ASSERT_TRUE(from_a.ok() && from_b.ok()) << EstimatorKindName(kind);
    EXPECT_DOUBLE_EQ(from_a.value().value, from_b.value().value)
        << EstimatorKindName(kind);
    EXPECT_EQ(from_a.value().samples_used, from_b.value().samples_used);
    EXPECT_DOUBLE_EQ(from_a.value().std_error, from_b.value().std_error)
        << EstimatorKindName(kind);
    EXPECT_DOUBLE_EQ(from_a.value().ess, from_b.value().ess)
        << EstimatorKindName(kind);
  }
}

// ------------------------------------------------- budgets and reports

TEST(EngineTest, ChainReportsCarryDiagnostics) {
  const CsrGraph g = MakeBarbell(6, 2);
  BetweennessEngine engine(g);
  EstimateRequest request;
  request.kind = EstimatorKind::kMetropolisHastings;
  request.samples = 600;
  const auto report = engine.Estimate(6, request);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().acceptance_rate, 0.0);
  EXPECT_LE(report.value().acceptance_rate, 1.0);
  EXPECT_GT(report.value().ess, 0.0);
  EXPECT_GT(report.value().std_error, 0.0);
  EXPECT_DOUBLE_EQ(report.value().ci_half_width,
                   request.z * report.value().std_error);
  EXPECT_EQ(report.value().samples_used, 600u);
  EXPECT_EQ(report.value().vertex, 6u);
}

TEST(EngineTest, StandardErrorBudgetConverges) {
  const CsrGraph g = MakeBarbell(5, 1);
  BetweennessEngine engine(g);
  EstimateRequest request;
  request.kind = EstimatorKind::kUniformSource;
  request.budget = BudgetKind::kStandardError;
  request.target_std_error = 0.02;
  const auto report = engine.Estimate(5, request);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().converged);
  EXPECT_LE(report.value().std_error, 0.02);
  EXPECT_GT(report.value().samples_used, 0u);
  const double exact = ExactBetweennessSingle(g, 5);
  EXPECT_NEAR(report.value().value, exact, 10 * 0.02);
}

TEST(EngineTest, StandardErrorBudgetReportsNonConvergence) {
  const CsrGraph g = MakeBarabasiAlbert(200, 3, 11);
  BetweennessEngine engine(g);
  EstimateRequest request;
  request.kind = EstimatorKind::kUniformSource;
  request.budget = BudgetKind::kStandardError;
  request.target_std_error = 1e-12;  // unreachable
  request.max_samples = 512;
  const auto report = engine.Estimate(0, request);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().converged);
  EXPECT_LE(report.value().samples_used, 512u);
}

TEST(EngineTest, AdaptiveChainBudgetConverges) {
  const CsrGraph g = MakeBarbell(5, 1);
  BetweennessEngine engine(g);
  EstimateRequest request;
  request.kind = EstimatorKind::kMhRaoBlackwell;
  request.budget = BudgetKind::kStandardError;
  request.target_std_error = 0.02;
  request.max_samples = 1 << 15;
  const auto report = engine.Estimate(5, request);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().converged);
  EXPECT_LE(report.value().std_error, 0.02);
  // The converged report is a pure function of (seed, samples_used):
  // replaying it as a fixed-budget request reproduces the value exactly.
  EstimateRequest replay;
  replay.kind = request.kind;
  replay.samples = report.value().samples_used;
  replay.seed = request.seed;
  BetweennessEngine fresh(g);
  const auto replayed = fresh.Estimate(5, replay);
  ASSERT_TRUE(replayed.ok());
  EXPECT_DOUBLE_EQ(replayed.value().value, report.value().value);
}

TEST(EngineTest, DeadlineBudgetStopsAndReports) {
  const CsrGraph g = MakeConnectedCaveman(4, 8);
  BetweennessEngine engine(g);
  EstimateRequest request;
  request.kind = EstimatorKind::kUniformSource;
  request.budget = BudgetKind::kDeadline;
  request.deadline_seconds = 0.02;
  request.max_samples = 1 << 22;
  const auto report = engine.Estimate(7, request);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().converged);
  EXPECT_GT(report.value().samples_used, 0u);
  EXPECT_LE(report.value().seconds, 1.0);  // generous sanity bound
}

TEST(EngineTest, BatchServesHeterogeneousRequestsAndFailsFast) {
  const CsrGraph g = MakeBarbell(4, 1);
  BetweennessEngine engine(g);
  EstimateRequest mh;
  mh.vertex = 4;
  mh.samples = 200;
  EstimateRequest exact;
  exact.vertex = 5;
  exact.kind = EstimatorKind::kExact;
  const auto batch = engine.EstimateBatch({mh, exact});
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch.value().size(), 2u);
  EXPECT_EQ(batch.value()[0].kind, EstimatorKind::kMetropolisHastings);
  EXPECT_EQ(batch.value()[1].kind, EstimatorKind::kExact);

  // An invalid vertex anywhere rejects the whole batch before any work.
  EstimateRequest bad = mh;
  bad.vertex = 99;
  const std::uint64_t passes_before = engine.total_sp_passes();
  EXPECT_FALSE(engine.EstimateBatch({mh, bad}).ok());
  EXPECT_EQ(engine.total_sp_passes(), passes_before);
}

// -------------------------------------------------------- validation

TEST(EngineTest, ValidationMirrorsFreeApi) {
  const CsrGraph g = MakeCycle(6);
  BetweennessEngine engine(g);
  EstimateRequest request;
  EXPECT_FALSE(engine.Estimate(6, request).ok());  // out of range
  request.samples = 0;
  EXPECT_FALSE(engine.Estimate(0, request).ok());  // empty budget
  request.samples = 10;
  request.budget = BudgetKind::kDeadline;
  EXPECT_FALSE(engine.Estimate(0, request).ok());  // no deadline given
  request.budget = BudgetKind::kStandardError;
  EXPECT_FALSE(engine.Estimate(0, request).ok());  // no target given
  const CsrGraph trivial = MakePath(1);
  BetweennessEngine tiny(trivial);
  EXPECT_FALSE(tiny.Estimate(0, EstimateRequest()).ok());
}

TEST(EngineTest, TopKReusesDiameterAndCreditAcrossCalls) {
  const CsrGraph g = MakeConnectedCaveman(5, 8);
  BetweennessEngine engine(g);
  const auto first = engine.TopK(3, 0.05, 0.1, 17);
  ASSERT_TRUE(first.ok());
  const std::uint64_t passes_after_first = engine.total_sp_passes();
  const auto second = engine.TopK(5, 0.05, 0.1, 17);  // larger k, same probe
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(engine.total_sp_passes(), passes_after_first);
  ASSERT_EQ(second.value().size(), 5u);
  for (std::size_t i = 0; i < first.value().size(); ++i) {
    EXPECT_EQ(second.value()[i].vertex, first.value()[i].vertex);
  }
}

}  // namespace
}  // namespace mhbc
