#include "sp/bidirectional_bfs.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "sp/distance.h"
#include "util/rng.h"

namespace mhbc {
namespace {

TEST(BbBfsTest, SameVertexZero) {
  const CsrGraph g = MakePath(4);
  EXPECT_EQ(BidirectionalBfsDistance(g, 2, 2).distance, 0u);
}

TEST(BbBfsTest, AdjacentVertices) {
  const CsrGraph g = MakePath(4);
  EXPECT_EQ(BidirectionalBfsDistance(g, 1, 2).distance, 1u);
}

TEST(BbBfsTest, PathEndToEnd) {
  const CsrGraph g = MakePath(10);
  EXPECT_EQ(BidirectionalBfsDistance(g, 0, 9).distance, 9u);
}

TEST(BbBfsTest, DisconnectedReportsUnreached) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);
  const CsrGraph g = std::move(b.Build()).value();
  EXPECT_EQ(BidirectionalBfsDistance(g, 0, 3).distance, kUnreachedDistance);
}

TEST(BbBfsTest, MatchesBfsOnRandomGraphs) {
  Rng rng(99);
  for (std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
    const CsrGraph g = MakeErdosRenyiGnm(100, 250, seed);
    for (int q = 0; q < 30; ++q) {
      const VertexId s = rng.NextVertex(g.num_vertices());
      const VertexId t = rng.NextVertex(g.num_vertices());
      const auto expected = BfsDistances(g, s)[t];
      EXPECT_EQ(BidirectionalBfsDistance(g, s, t).distance, expected)
          << "seed " << seed << " s=" << s << " t=" << t;
    }
  }
}

TEST(BbBfsTest, ScansFewerEdgesThanFullBfsOnHubGraph) {
  // On a scale-free graph, meeting in the middle should scan far fewer
  // edges than the full 2m adjacency for distant low-degree pairs.
  const CsrGraph g = MakeBarabasiAlbert(2000, 3, 7);
  const auto result = BidirectionalBfsDistance(g, 1500, 1999);
  EXPECT_NE(result.distance, kUnreachedDistance);
  EXPECT_LT(result.edges_scanned, 2 * g.num_edges());
}

}  // namespace
}  // namespace mhbc
