#include "baselines/rk_sampler.h"

#include <gtest/gtest.h>

#include <cmath>

#include "exact/brandes.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "util/stats.h"

namespace mhbc {
namespace {

TEST(RkSamplerTest, ConvergesOnStarCenter) {
  const CsrGraph g = MakeStar(12);
  RkSampler sampler(g, 3);
  const double exact = ExactBetweennessSingle(g, 0);
  EXPECT_NEAR(sampler.Estimate(0, 30'000), exact, 0.02);
}

TEST(RkSamplerTest, LeafNeverCredited) {
  const CsrGraph g = MakeStar(8);
  RkSampler sampler(g, 5);
  EXPECT_DOUBLE_EQ(sampler.Estimate(3, 2'000), 0.0);
}

TEST(RkSamplerTest, EstimateAllTracksExactVector) {
  const CsrGraph g = MakeBarbell(4, 2);
  RkSampler sampler(g, 7);
  const auto estimates = sampler.EstimateAll(40'000);
  const auto exact = ExactBetweenness(g);
  EXPECT_LT(MaxAbsoluteError(estimates, exact), 0.03);
}

TEST(RkSamplerTest, TiedPathsSplitCredit) {
  // C4: vertex 1 and 3 each carry half the (0,2) traffic.
  const CsrGraph g = MakeCycle(4);
  RkSampler sampler(g, 9);
  const auto estimates = sampler.EstimateAll(60'000);
  const auto exact = ExactBetweenness(g);
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_NEAR(estimates[v], exact[v], 0.02) << "vertex " << v;
  }
}

TEST(RkSamplerTest, DeterministicForSeed) {
  const CsrGraph g = MakeGrid(4, 4);
  RkSampler a(g, 31);
  RkSampler b(g, 31);
  EXPECT_DOUBLE_EQ(a.Estimate(5, 500), b.Estimate(5, 500));
}

TEST(RkSamplerTest, PassAccounting) {
  const CsrGraph g = MakeCycle(9);
  RkSampler sampler(g, 33);
  sampler.Estimate(0, 40);
  EXPECT_EQ(sampler.num_passes(), 40u);
}

TEST(RkSampleBoundTest, MonotoneInEpsAndDelta) {
  const auto loose = RkSampler::SampleBound(10, 0.1, 0.1);
  const auto tighter_eps = RkSampler::SampleBound(10, 0.05, 0.1);
  const auto tighter_delta = RkSampler::SampleBound(10, 0.1, 0.01);
  EXPECT_GT(tighter_eps, loose);
  EXPECT_GT(tighter_delta, loose);
}

TEST(RkSampleBoundTest, KnownValue) {
  // vd=6: floor(log2(4)) + 1 = 3; bound = 0.5/eps^2 (3 + ln(1/delta)).
  const double expected = 0.5 / (0.1 * 0.1) * (3.0 + std::log(10.0));
  EXPECT_EQ(RkSampler::SampleBound(6, 0.1, 0.1),
            static_cast<std::uint64_t>(std::ceil(expected)));
}

TEST(RkSampleBoundTest, MinimalVertexDiameter) {
  // vd == 2 (single edge graphs) uses VC dimension 1.
  const double expected = 0.5 / (0.2 * 0.2) * (1.0 + std::log(20.0));
  EXPECT_EQ(RkSampler::SampleBound(2, 0.2, 0.05),
            static_cast<std::uint64_t>(std::ceil(expected)));
}

TEST(RkSamplerTest, WeightedUnitMatchesUnweighted) {
  const CsrGraph g = MakeGrid(4, 4);
  const CsrGraph wg = AssignUniformWeights(g, 1.0, 1.0, 51);
  RkSampler weighted(wg, 61);
  const auto estimates = weighted.EstimateAll(30'000);
  const auto exact = ExactBetweenness(g);
  EXPECT_LT(MaxAbsoluteError(estimates, exact), 0.03);
}

TEST(RkSamplerTest, WeightedReroutedPathsCredited) {
  // Square 0-1-2-3-0 with cheap edges through 1: all (0,2) traffic goes
  // via 1, never via 3.
  GraphBuilder b(4);
  b.AddWeightedEdge(0, 1, 1.0);
  b.AddWeightedEdge(1, 2, 1.0);
  b.AddWeightedEdge(2, 3, 3.0);
  b.AddWeightedEdge(3, 0, 3.0);
  const CsrGraph g = std::move(b.Build()).value();
  RkSampler sampler(g, 71);
  const auto estimates = sampler.EstimateAll(20'000);
  EXPECT_GT(estimates[1], 0.1);
  EXPECT_DOUBLE_EQ(estimates[3], 0.0);
}

TEST(RkSamplerTest, BoundDeliversAccuracyOnGrid) {
  // End-to-end: draw the bound's sample count, check the error is within
  // eps for a handful of vertices (probabilistic, generous margins).
  const CsrGraph g = MakeGrid(5, 5);
  const double eps = 0.05;
  const std::uint64_t samples = RkSampler::SampleBound(9 + 1, eps, 0.1);
  RkSampler sampler(g, 41);
  const auto estimates = sampler.EstimateAll(samples);
  const auto exact = ExactBetweenness(g);
  EXPECT_LE(MaxAbsoluteError(estimates, exact), eps * 2);
}

}  // namespace
}  // namespace mhbc
