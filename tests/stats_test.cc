#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace mhbc {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats rs;
  rs.Add(4.5);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.mean(), 4.5);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 4.5);
  EXPECT_DOUBLE_EQ(rs.max(), 4.5);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.Add(x);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  // Sample variance of the classic dataset: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(MeanTest, EmptyAndBasic) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(StdDevTest, ConstantSeriesIsZero) {
  EXPECT_DOUBLE_EQ(StdDev({5.0, 5.0, 5.0}), 0.0);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 5.0);
}

TEST(QuantileTest, Interpolates) {
  std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25), 2.5);
}

TEST(ErrorMetricsTest, MeanAndMaxAbsolute) {
  std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{1.5, 2.0, 1.0};
  EXPECT_NEAR(MeanAbsoluteError(a, b), (0.5 + 0.0 + 2.0) / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(MaxAbsoluteError(a, b), 2.0);
}

TEST(ErrorMetricsTest, IdenticalVectorsZeroError) {
  std::vector<double> a{1.0, 2.0};
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(a, a), 0.0);
  EXPECT_DOUBLE_EQ(MaxAbsoluteError(a, a), 0.0);
  EXPECT_DOUBLE_EQ(MeanRelativeError(a, a, 1e-9), 0.0);
}

TEST(ErrorMetricsTest, RelativeErrorUsesFloor) {
  std::vector<double> est{0.5};
  std::vector<double> truth{0.0};
  // Reference is 0, so the floor (0.1) divides: 0.5/0.1 = 5.
  EXPECT_DOUBLE_EQ(MeanRelativeError(est, truth, 0.1), 5.0);
}

TEST(RanksTest, DistinctValues) {
  const std::vector<double> ranks = AverageRanks({10.0, 30.0, 20.0});
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 3.0);
  EXPECT_DOUBLE_EQ(ranks[2], 2.0);
}

TEST(RanksTest, TiesShareAverageRank) {
  const std::vector<double> ranks = AverageRanks({5.0, 5.0, 1.0});
  EXPECT_DOUBLE_EQ(ranks[0], 2.5);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 1.0);
}

TEST(CorrelationTest, PerfectPositive) {
  std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  std::vector<double> b{10.0, 20.0, 30.0, 40.0};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
  EXPECT_NEAR(SpearmanCorrelation(a, b), 1.0, 1e-12);
  EXPECT_NEAR(KendallTau(a, b), 1.0, 1e-12);
}

TEST(CorrelationTest, PerfectNegative) {
  std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  std::vector<double> b{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(PearsonCorrelation(a, b), -1.0, 1e-12);
  EXPECT_NEAR(SpearmanCorrelation(a, b), -1.0, 1e-12);
  EXPECT_NEAR(KendallTau(a, b), -1.0, 1e-12);
}

TEST(CorrelationTest, MonotoneNonlinearPerfectRankCorrelation) {
  std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  std::vector<double> b{1.0, 8.0, 27.0, 64.0};  // a^3: monotone
  EXPECT_NEAR(SpearmanCorrelation(a, b), 1.0, 1e-12);
  EXPECT_NEAR(KendallTau(a, b), 1.0, 1e-12);
  EXPECT_LT(PearsonCorrelation(a, b), 1.0);
}

TEST(CorrelationTest, DegenerateInputsReturnZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1.0}, {2.0}), 0.0);
  EXPECT_DOUBLE_EQ(SpearmanCorrelation({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(KendallTau({1.0}, {1.0}), 0.0);
  // Zero variance in one argument.
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1.0, 1.0}, {1.0, 2.0}), 0.0);
}

TEST(KendallTauTest, KnownSmallExample) {
  // One discordant pair among three: tau = (2 - 1) / 3.
  std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{1.0, 3.0, 2.0};
  EXPECT_NEAR(KendallTau(a, b), 1.0 / 3.0, 1e-12);
}

TEST(ChiSquareTest, PerfectFitIsZero) {
  std::vector<std::uint64_t> obs{25, 25, 25, 25};
  std::vector<double> p{0.25, 0.25, 0.25, 0.25};
  EXPECT_DOUBLE_EQ(ChiSquareStatistic(obs, p), 0.0);
}

TEST(ChiSquareTest, KnownValue) {
  std::vector<std::uint64_t> obs{30, 70};
  std::vector<double> p{0.5, 0.5};
  // (30-50)^2/50 + (70-50)^2/50 = 8 + 8 = 16.
  EXPECT_DOUBLE_EQ(ChiSquareStatistic(obs, p), 16.0);
}

TEST(TotalVariationTest, IdenticalIsZero) {
  std::vector<std::uint64_t> obs{50, 50};
  std::vector<double> p{0.5, 0.5};
  EXPECT_DOUBLE_EQ(TotalVariationDistance(obs, p), 0.0);
}

TEST(TotalVariationTest, DisjointIsOne) {
  std::vector<std::uint64_t> obs{100, 0};
  std::vector<double> p{0.0, 1.0};
  EXPECT_DOUBLE_EQ(TotalVariationDistance(obs, p), 1.0);
}

TEST(TotalVariationTest, HalfwayExample) {
  std::vector<std::uint64_t> obs{75, 25};
  std::vector<double> p{0.5, 0.5};
  EXPECT_DOUBLE_EQ(TotalVariationDistance(obs, p), 0.25);
}

}  // namespace
}  // namespace mhbc
