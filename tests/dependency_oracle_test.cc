#include "exact/dependency_oracle.h"

#include <gtest/gtest.h>

#include "exact/brandes.h"
#include "graph/generators.h"

namespace mhbc {
namespace {

TEST(DependencyOracleTest, MatchesProfileColumn) {
  const CsrGraph g = MakeBarabasiAlbert(40, 2, 17);
  DependencyOracle oracle(g);
  const VertexId r = 5;
  const auto profile = DependencyProfile(g, r);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(oracle.Dependency(v, r), profile[v], 1e-9) << "source " << v;
  }
}

TEST(DependencyOracleTest, CountsPasses) {
  const CsrGraph g = MakeCycle(10);
  DependencyOracle oracle(g);
  EXPECT_EQ(oracle.num_passes(), 0u);
  oracle.Dependency(0, 5);
  oracle.Dependency(1, 5);
  EXPECT_EQ(oracle.num_passes(), 2u);
}

TEST(DependencyOracleTest, EstimatorTermIsDeltaOverNMinus1) {
  const CsrGraph g = MakePath(5);
  DependencyOracle oracle(g);
  // From source 0, delta on vertex 2 is 2 (targets 3 and 4).
  EXPECT_DOUBLE_EQ(oracle.EstimatorTerm(0, 2), 2.0 / 4.0);
}

TEST(DependencyOracleTest, WeightedGraphUsesDijkstra) {
  const CsrGraph wg = AssignUniformWeights(MakeGrid(4, 4), 1.0, 1.0, 3);
  const CsrGraph g = MakeGrid(4, 4);
  DependencyOracle weighted(wg);
  DependencyOracle unweighted(g);
  for (VertexId v = 0; v < g.num_vertices(); v += 3) {
    const auto& dw = weighted.Dependencies(v);
    const auto& du = unweighted.Dependencies(v);
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      EXPECT_NEAR(dw[u], du[u], 1e-9);
    }
  }
}

TEST(DependencyOracleTest, DependenciesVectorReusedAcrossCalls) {
  const CsrGraph g = MakeStar(6);
  DependencyOracle oracle(g);
  const auto& first = oracle.Dependencies(1);
  EXPECT_DOUBLE_EQ(first[0], 4.0);
  const auto& second = oracle.Dependencies(2);
  // Same underlying buffer, refreshed content.
  EXPECT_DOUBLE_EQ(second[0], 4.0);
  EXPECT_DOUBLE_EQ(second[1], 0.0);
}

}  // namespace
}  // namespace mhbc
