#include "core/joint_space.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/theory.h"
#include "exact/brandes.h"
#include "graph/generators.h"

namespace mhbc {
namespace {

TEST(JointSpaceTest, RatioMatchesExactOnBarbell) {
  // Theorem 3: the Eq. 22 ratio estimator is exactly consistent for
  // BC(ri)/BC(rj) — the headline property of the joint-space sampler.
  const CsrGraph g = MakeBarbell(5, 3);
  const std::vector<VertexId> targets{5, 6, 7};  // bridge vertices
  const auto exact = ExactBetweenness(g);
  JointOptions options;
  options.seed = 11;
  JointSpaceSampler sampler(g, targets, options);
  const JointResult result = sampler.Run(30'000);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    for (std::size_t j = 0; j < targets.size(); ++j) {
      const double truth = exact[targets[i]] / exact[targets[j]];
      EXPECT_NEAR(result.ratio[i][j], truth, 0.05 * truth)
          << "pair (" << i << "," << j << ")";
    }
  }
}

TEST(JointSpaceTest, RatioConsistentOnHeterogeneousTargets) {
  // Unlike the single-space estimate, the ratio stays consistent even when
  // dependency profiles are skewed (path graph positions).
  const CsrGraph g = MakePath(10);
  const std::vector<VertexId> targets{2, 5};
  const auto exact = ExactBetweenness(g);
  JointOptions options;
  options.seed = 13;
  JointSpaceSampler sampler(g, targets, options);
  const JointResult result = sampler.Run(60'000);
  const double truth = exact[2] / exact[5];
  EXPECT_NEAR(result.ratio[0][1], truth, 0.05 * truth);
}

TEST(JointSpaceTest, RelativeScoreConvergesToChainLimit) {
  // The per-direction average converges to E_{P_rj}[clipped ratio]
  // (theory.h ChainLimitRelative), the quantity whose ratio Theorem 3 uses.
  const CsrGraph g = MakePath(10);
  const std::vector<VertexId> targets{2, 5};
  const auto profile_2 = DependencyProfile(g, 2);
  const auto profile_5 = DependencyProfile(g, 5);
  JointOptions options;
  options.seed = 17;
  JointSpaceSampler sampler(g, targets, options);
  const JointResult result = sampler.Run(80'000);
  EXPECT_NEAR(result.relative[1][0], ChainLimitRelative(profile_2, profile_5),
              0.02);
  EXPECT_NEAR(result.relative[0][1], ChainLimitRelative(profile_5, profile_2),
              0.02);
}

TEST(JointSpaceTest, TheoremThreeIdentityExact) {
  // Algebraic check of Eq. 21 summed over v (the detailed-balance step of
  // Theorem 3's proof): BC(ri) * E_{P_ri}[min{1, dj/di}] ==
  // BC(rj) * E_{P_rj}[min{1, di/dj}] — compute both sides exactly.
  const CsrGraph g = MakeBarabasiAlbert(30, 2, 19);
  const auto exact = ExactBetweenness(g, Normalization::kNone);
  for (VertexId ri = 0; ri < 4; ++ri) {
    for (VertexId rj = ri + 1; rj < 4; ++rj) {
      if (exact[ri] == 0.0 || exact[rj] == 0.0) continue;
      const auto pi = DependencyProfile(g, ri);
      const auto pj = DependencyProfile(g, rj);
      const double lhs = exact[ri] * ChainLimitRelative(pj, pi);
      const double rhs = exact[rj] * ChainLimitRelative(pi, pj);
      EXPECT_NEAR(lhs, rhs, 1e-9 * std::max(lhs, rhs));
    }
  }
}

TEST(JointSpaceTest, DiagonalIsOne) {
  // All three targets have positive betweenness (bridge + both gateways),
  // so the chain visits each and the diagonal averages are exactly 1.
  const CsrGraph g = MakeBarbell(4, 1);
  JointOptions options;
  options.seed = 23;
  JointSpaceSampler sampler(g, {4, 3, 5}, options);
  const JointResult result = sampler.Run(2'000);
  EXPECT_FALSE(result.undersampled);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(result.relative[i][i], 1.0);
    EXPECT_DOUBLE_EQ(result.ratio[i][i], 1.0);
  }
}

TEST(JointSpaceTest, ZeroBetweennessTargetNeverVisited) {
  // A clique-interior vertex of the barbell has zero betweenness: the
  // stationary distribution (Eq. 18) gives its half of the joint space no
  // mass, so (almost) no samples land there and the result is flagged.
  const CsrGraph g = MakeBarbell(4, 1);
  JointOptions options;
  options.seed = 25;
  JointSpaceSampler sampler(g, {4, 0}, options);
  const JointResult result = sampler.Run(4'000);
  // Target 0 can hold at most the initial state before the chain escapes.
  EXPECT_LE(result.samples_per_target[1], 5u);
}

TEST(JointSpaceTest, SamplesPartitionAcrossTargets) {
  const CsrGraph g = MakeBarbell(4, 1);
  JointOptions options;
  options.seed = 29;
  JointSpaceSampler sampler(g, {4, 3, 5}, options);
  const std::uint64_t kIterations = 5'000;
  const JointResult result = sampler.Run(kIterations);
  std::uint64_t total = 0;
  for (std::uint64_t c : result.samples_per_target) total += c;
  EXPECT_EQ(total, kIterations + 1);  // every chain state lands in one M(k)
  EXPECT_FALSE(result.undersampled);
}

TEST(JointSpaceTest, CopelandScoresRankByBetweenness) {
  // Bridge vertex dominates the two gateway vertices in the barbell
  // (raw BC: bridge 50, gateways 48 each).
  const CsrGraph g = MakeBarbell(5, 1);
  JointOptions options;
  options.seed = 31;
  JointSpaceSampler sampler(g, {4, 5, 6}, options);
  const JointResult result = sampler.Run(20'000);
  // targets[1] == 5 is the bridge: must beat both gateways.
  EXPECT_DOUBLE_EQ(result.copeland_scores[1], 2.0);
}

TEST(JointSpaceTest, TraceRecordsJointStates) {
  const CsrGraph g = MakeCycle(8);
  JointOptions options;
  options.seed = 37;
  options.record_trace = true;
  JointSpaceSampler sampler(g, {0, 4}, options);
  const JointResult result = sampler.Run(100);
  EXPECT_EQ(result.trace.size(), 101u);
  for (const auto& [target_idx, v] : result.trace) {
    EXPECT_LT(target_idx, 2u);
    EXPECT_LT(v, 8u);
  }
}

TEST(JointSpaceTest, DeterministicForSeed) {
  const CsrGraph g = MakeBarabasiAlbert(40, 2, 41);
  JointOptions options;
  options.seed = 43;
  JointSpaceSampler a(g, {0, 1, 2}, options);
  JointSpaceSampler b(g, {0, 1, 2}, options);
  const JointResult ra = a.Run(500);
  const JointResult rb = b.Run(500);
  EXPECT_EQ(ra.samples_per_target, rb.samples_per_target);
  EXPECT_DOUBLE_EQ(ra.ratio[0][1], rb.ratio[0][1]);
}

TEST(JointSpaceTest, BurnInShrinksRecordedSamples) {
  const CsrGraph g = MakeCycle(10);
  JointOptions options;
  options.seed = 47;
  options.burn_in = 200;
  JointSpaceSampler sampler(g, {0, 5}, options);
  const JointResult result = sampler.Run(300);
  std::uint64_t total = 0;
  for (std::uint64_t c : result.samples_per_target) total += c;
  EXPECT_EQ(total, 300u);
  EXPECT_EQ(result.diagnostics.iterations, 500u);
}

}  // namespace
}  // namespace mhbc
