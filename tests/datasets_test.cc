#include "datasets/registry.h"

#include <gtest/gtest.h>

#include "graph/graph_algos.h"

namespace mhbc {
namespace {

TEST(DatasetsTest, RegistryNonEmptyAndNamed) {
  const auto& registry = DatasetRegistry();
  EXPECT_GE(registry.size(), 5u);
  for (const DatasetSpec& spec : registry) {
    EXPECT_FALSE(spec.name.empty());
    EXPECT_FALSE(spec.stands_in_for.empty());
    EXPECT_NE(spec.make, nullptr);
  }
}

TEST(DatasetsTest, AllDatasetsConnectedAndDeterministic) {
  for (const DatasetSpec& spec : DatasetRegistry()) {
    const CsrGraph g1 = spec.make();
    EXPECT_TRUE(IsConnected(g1)) << spec.name;
    EXPECT_GE(g1.num_vertices(), 30u) << spec.name;
    const CsrGraph g2 = spec.make();
    EXPECT_EQ(g1.num_vertices(), g2.num_vertices()) << spec.name;
    EXPECT_EQ(g1.num_edges(), g2.num_edges()) << spec.name;
  }
}

TEST(DatasetsTest, MakeDatasetByName) {
  const auto result = MakeDataset("email-like-1k");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_vertices(), 1000u);
}

TEST(DatasetsTest, UnknownNameIsNotFound) {
  const auto result = MakeDataset("no-such-graph");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(DatasetsTest, DefaultExperimentSubsetResolves) {
  for (const std::string& name : DefaultExperimentDatasets()) {
    EXPECT_TRUE(MakeDataset(name).ok()) << name;
  }
}

}  // namespace
}  // namespace mhbc
