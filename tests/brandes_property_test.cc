#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "exact/brandes.h"
#include "graph/generators.h"
#include "sp/distance.h"

namespace mhbc {
namespace {

/// Property sweep over random graph families: global betweenness identities
/// that hold for every unweighted graph.
class BrandesPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {
 protected:
  CsrGraph MakeGraph() const {
    const auto [family, seed] = GetParam();
    switch (family) {
      case 0:
        return MakeErdosRenyiGnm(40, 90, seed);
      case 1:
        return MakeBarabasiAlbert(40, 2, seed);
      case 2:
        return MakeWattsStrogatz(40, 4, 0.2, seed);
      default:
        return MakeConnectedCaveman(5, 8);
    }
  }
};

TEST_P(BrandesPropertyTest, TotalRawEqualsInteriorVertexCount) {
  // sum_v raw(v) = sum over ordered reachable pairs (s,t) of (d(s,t) - 1).
  const CsrGraph g = MakeGraph();
  const auto raw = ExactBetweenness(g, Normalization::kNone);
  double total = 0.0;
  for (double s : raw) total += s;
  double expected = 0.0;
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    const auto dist = BfsDistances(g, s);
    for (VertexId t = 0; t < g.num_vertices(); ++t) {
      if (t == s || dist[t] == kUnreachedDistance) continue;
      expected += static_cast<double>(dist[t]) - 1.0;
    }
  }
  EXPECT_NEAR(total, expected, 1e-6);
}

TEST_P(BrandesPropertyTest, ScoresNonNegativeAndPaperNormalizedBounded) {
  const CsrGraph g = MakeGraph();
  const auto paper = ExactBetweenness(g, Normalization::kPaper);
  for (double s : paper) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST_P(BrandesPropertyTest, DegreeOneVerticesHaveZeroBetweenness) {
  const CsrGraph g = MakeGraph();
  const auto raw = ExactBetweenness(g, Normalization::kNone);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) == 1) {
      EXPECT_DOUBLE_EQ(raw[v], 0.0) << "leaf " << v;
    }
  }
}

TEST_P(BrandesPropertyTest, ProfileSumsMatchFullScores) {
  const CsrGraph g = MakeGraph();
  const auto raw = ExactBetweenness(g, Normalization::kNone);
  // Spot-check three targets spread over the id range.
  for (VertexId r : {VertexId{0}, static_cast<VertexId>(g.num_vertices() / 2),
                     static_cast<VertexId>(g.num_vertices() - 1)}) {
    const auto profile = DependencyProfile(g, r);
    double total = 0.0;
    for (double d : profile) total += d;
    EXPECT_NEAR(total, raw[r], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, BrandesPropertyTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values<std::uint64_t>(7, 8, 9)));

}  // namespace
}  // namespace mhbc
