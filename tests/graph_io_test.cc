#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "graph/generators.h"

namespace mhbc {
namespace {

StatusOr<CsrGraph> ParseString(const std::string& text,
                               EdgeListOptions options = {}) {
  std::istringstream in(text);
  return ParseEdgeList(in, options);
}

TEST(GraphIoTest, ParsesSnapStyleInput) {
  const auto result = ParseString(
      "# Directed graph (each unordered pair of nodes is saved once)\n"
      "# Nodes: 4 Edges: 4\n"
      "10\t20\n"
      "20\t10\n"   // reverse duplicate, must merge
      "20\t30\n"
      "30\t40\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const CsrGraph& g = result.value();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(GraphIoTest, RemapsArbitraryIdsDense) {
  const auto result = ParseString("1000000 5\n5 42\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_vertices(), 3u);
  EXPECT_EQ(result.value().num_edges(), 2u);
}

TEST(GraphIoTest, IgnoresSelfLoops) {
  const auto result = ParseString("1 1\n1 2\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_edges(), 1u);
}

TEST(GraphIoTest, RejectsMalformedLine) {
  const auto result = ParseString("1 2\n3\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(GraphIoTest, RejectsThirdColumnWithoutWeights) {
  const auto result = ParseString("1 2 3.5\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("third column"), std::string::npos);
}

TEST(GraphIoTest, ParsesWeightsWhenEnabled) {
  EdgeListOptions options;
  options.allow_weights = true;
  const auto result = ParseString("1 2 3.5\n2 3 0.5\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().weighted());
  EXPECT_DOUBLE_EQ(result.value().EdgeWeight(0, 1), 3.5);
}

TEST(GraphIoTest, RejectsNonPositiveWeight) {
  EdgeListOptions options;
  options.allow_weights = true;
  EXPECT_FALSE(ParseString("1 2 0\n", options).ok());
  EXPECT_FALSE(ParseString("1 2 -3\n", options).ok());
}

TEST(GraphIoTest, EmptyInputIsError) {
  EXPECT_FALSE(ParseString("").ok());
  EXPECT_FALSE(ParseString("# only comments\n").ok());
}

TEST(GraphIoTest, LargestComponentFilter) {
  EdgeListOptions options;
  options.largest_component_only = true;
  // Two components: {a,b,c} path and {x,y} edge.
  const auto result = ParseString("1 2\n2 3\n100 200\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_vertices(), 3u);
  EXPECT_EQ(result.value().num_edges(), 2u);
}

TEST(GraphIoTest, TrailingCommentOnDataLine) {
  const auto result = ParseString("1 2 # inline note\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_edges(), 1u);
}

TEST(GraphIoTest, WriteReadRoundTripUnweighted) {
  const CsrGraph g = MakeBarabasiAlbert(60, 2, 31);
  std::ostringstream out;
  WriteEdgeList(g, out);
  const auto parsed = ParseString(out.str());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().num_vertices(), g.num_vertices());
  EXPECT_EQ(parsed.value().num_edges(), g.num_edges());
}

TEST(GraphIoTest, WriteReadRoundTripWeighted) {
  const CsrGraph g = AssignUniformWeights(MakeCycle(12), 0.5, 1.5, 37);
  std::ostringstream out;
  WriteEdgeList(g, out);
  EdgeListOptions options;
  options.allow_weights = true;
  const auto parsed = ParseString(out.str(), options);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().weighted());
  EXPECT_EQ(parsed.value().num_edges(), g.num_edges());
}

TEST(GraphIoTest, FileRoundTripAndMissingFile) {
  const std::string path = ::testing::TempDir() + "/mhbc_io_test.txt";
  const CsrGraph g = MakeStar(9);
  ASSERT_TRUE(WriteEdgeList(g, path).ok());
  const auto loaded = LoadSnapEdgeList(path, {});
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_edges(), 8u);
  std::remove(path.c_str());

  const auto missing = LoadSnapEdgeList("/nonexistent/nope.txt", {});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIoError);
}

TEST(GraphIoTest, ParseVertexIdListTrimsButRejectsGarbage) {
  EXPECT_EQ(ParseVertexIdList("3,17,42"),
            (std::vector<VertexId>{3, 17, 42}));
  // Whitespace around tokens is fine (quoted CLI lists: "10, 11, 12").
  EXPECT_EQ(ParseVertexIdList(" 10, 11 ,12"),
            (std::vector<VertexId>{10, 11, 12}));
  // Empty tokens are skipped...
  EXPECT_EQ(ParseVertexIdList("5,,6,"), (std::vector<VertexId>{5, 6}));
  // ...but any malformed token rejects the whole list — a typo must not
  // silently become vertex 0.
  EXPECT_TRUE(ParseVertexIdList("junk").empty());
  EXPECT_TRUE(ParseVertexIdList("1,2x,3").empty());
  EXPECT_TRUE(ParseVertexIdList("-1,2").empty());
  EXPECT_TRUE(ParseVertexIdList("1 2").empty());
  // Out-of-range ids must not wrap to some other 32-bit vertex.
  EXPECT_TRUE(ParseVertexIdList("4294967296").empty());   // 2^32 -> 0
  EXPECT_TRUE(ParseVertexIdList("4294967295").empty());   // kInvalidVertex
  EXPECT_TRUE(ParseVertexIdList("99999999999999999999").empty());
}

TEST(GraphIoTest, ParseVertexIdListStrictNamesTheOffendingToken) {
  // The strict parser is the loose one's source of truth: same accepts...
  const auto ok = ParseVertexIdListStrict(" 10, 11 ,12");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), (std::vector<VertexId>{10, 11, 12}));
  // ...but rejections carry the diagnosis instead of collapsing to {}.
  const auto garbage = ParseVertexIdListStrict("1,2x,3");
  ASSERT_FALSE(garbage.ok());
  EXPECT_EQ(garbage.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(garbage.status().message().find("no vertex ids"),
            std::string::npos);
  EXPECT_NE(garbage.status().message().find("'2x'"), std::string::npos);

  const auto overflow = ParseVertexIdListStrict("4294967295");
  ASSERT_FALSE(overflow.ok());
  EXPECT_NE(overflow.status().message().find("vertex-id range"),
            std::string::npos);

  const auto empty = ParseVertexIdListStrict(",,");
  ASSERT_FALSE(empty.ok());
  EXPECT_NE(empty.status().message().find("no vertex ids given"),
            std::string::npos);
}

}  // namespace
}  // namespace mhbc
