// Fixture: mhbc-layering fires exactly once when this content is lexed as
// a util-layer file (util may not include upward into core).
#include "core/mh_chain.h"

int LayeringFixture() { return 0; }
