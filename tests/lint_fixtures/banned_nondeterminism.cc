// Fixture: mhbc-banned-nondeterminism fires exactly once (libc rand()).
// Linted via LexSource in tests/lint_test.cc; the tree walk skips this
// directory (tools/lint/mhbc_lint.conf).
#include <cstdlib>

int SampleFixture() { return rand(); }
