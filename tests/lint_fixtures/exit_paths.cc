// Fixture: mhbc-exit-paths fires exactly once (std::exit in a helper;
// the call inside main() is exempt by design).
#include <cstdlib>

void BailFixture() { std::exit(1); }

int main() {
  BailFixture();
  return 0;
}
