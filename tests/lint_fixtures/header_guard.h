// Fixture: mhbc-header-guard fires exactly once (a header without
// #pragma once).

inline int HeaderGuardFixture() { return 42; }
