// Fixture: the same violation as banned_nondeterminism.cc, silenced three
// ways. Zero findings as written; tests/lint_test.cc also re-lints this
// content with the markers stripped and expects the findings back
// (suppression round-trip).
#include <cstdlib>

int SampleInline() { return rand(); }  // NOLINT(mhbc-banned-nondeterminism)

// NOLINTNEXTLINE(mhbc-banned-nondeterminism)
int SampleNextLine() { return rand(); }

int SampleBare() { return rand(); }  // NOLINT
