// Fixture: zero findings. Exercises the sanctioned twins of the banned
// patterns — exit() inside main(), an ordered (vector) accumulation, and a
// std::thread::hardware_concurrency query (a read, not a spawn).
#include <cstdlib>
#include <thread>
#include <vector>

int main() {
  const unsigned cores = std::thread::hardware_concurrency();
  std::vector<double> values{1.0, 2.0, 3.0};
  double total = 0.0;
  for (double v : values) total += v;
  if (total < 0.0 || cores == 0) std::exit(1);
  return 0;
}
