// Fixture: mhbc-unordered-accumulation fires exactly once (a floating-point
// += fold inside range-for over an unordered container).
#include <unordered_map>

double TotalFixture(const std::unordered_map<int, double>& weights) {
  double total = 0.0;
  for (const auto& entry : weights) {
    total += entry.second;
  }
  return total;
}
