// Fixture: mhbc-raw-concurrency fires exactly once (a std::mutex outside
// util/thread_pool).
#include <mutex>

std::mutex fixture_mutex;
