#include "graph/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "centrality/engine.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"

namespace mhbc {
namespace {

namespace fs = std::filesystem;

/// Per-test scratch file under the system temp dir, removed on teardown.
class SnapshotTest : public ::testing::Test {
 protected:
  std::string Path(const std::string& leaf) {
    const fs::path dir = fs::temp_directory_path() / "mhbc_snapshot_test";
    fs::create_directories(dir);
    const std::string path = (dir / leaf).string();
    created_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const std::string& path : created_) std::remove(path.c_str());
  }

  std::vector<std::string> created_;
};

/// Structural equality over the public accessors: vertex/edge counts,
/// weight flag, and every per-vertex neighbor/weight slice.
void ExpectGraphsIdentical(const CsrGraph& a, const CsrGraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.weighted(), b.weighted());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << "vertex " << v;
    for (std::size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i], nb[i]) << "vertex " << v << " slot " << i;
    }
    if (a.weighted()) {
      const auto wa = a.weights(v);
      const auto wb = b.weights(v);
      for (std::size_t i = 0; i < wa.size(); ++i) {
        EXPECT_EQ(wa[i], wb[i]) << "vertex " << v << " slot " << i;
      }
    }
  }
}

CsrGraph WeightedTriangleChain() {
  GraphBuilder builder(5);
  builder.AddWeightedEdge(0, 1, 0.5);
  builder.AddWeightedEdge(1, 2, 2.25);
  builder.AddWeightedEdge(0, 2, 1.0);
  builder.AddWeightedEdge(2, 3, 3.5);
  builder.AddWeightedEdge(3, 4, 0.125);
  auto built = builder.Build();
  EXPECT_TRUE(built.ok());
  CsrGraph graph = std::move(built).value();
  graph.set_name("weighted-chain");
  return graph;
}

TEST_F(SnapshotTest, RoundTripsUnweightedGraph) {
  const CsrGraph original = MakeBarabasiAlbert(200, 3, 0x51AB);
  const std::string path = Path("unweighted.mhbc");
  ASSERT_TRUE(SaveSnapshot(original, path).ok());

  auto buffered = LoadSnapshotBuffered(path);
  ASSERT_TRUE(buffered.ok()) << buffered.status().ToString();
  ExpectGraphsIdentical(original, buffered.value());
  EXPECT_EQ(buffered.value().name(), original.name());
  EXPECT_FALSE(buffered.value().is_external_view());

  auto mapped = LoadSnapshotMapped(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ExpectGraphsIdentical(original, mapped.value().graph());
  EXPECT_EQ(mapped.value().graph().name(), original.name());
}

TEST_F(SnapshotTest, RoundTripsWeightedGraph) {
  const CsrGraph original = WeightedTriangleChain();
  const std::string path = Path("weighted.mhbc");
  ASSERT_TRUE(SaveSnapshot(original, path).ok());
  auto mapped = LoadSnapshotMapped(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped.value().graph().weighted());
  ExpectGraphsIdentical(original, mapped.value().graph());
  EXPECT_EQ(mapped.value().graph().EdgeWeight(3, 4), 0.125);
}

TEST_F(SnapshotTest, MappedLoadIsZeroCopyAndBufferedFallbackMatches) {
  const CsrGraph original = MakeConnectedCaveman(6, 10);
  const std::string path = Path("parity.mhbc");
  ASSERT_TRUE(SaveSnapshot(original, path).ok());

  auto mapped = LoadSnapshotMapped(path);
  ASSERT_TRUE(mapped.ok());
  EXPECT_TRUE(mapped.value().zero_copy());
  EXPECT_GT(mapped.value().mapped_bytes(), 0u);
  EXPECT_TRUE(mapped.value().graph().is_external_view());

  SnapshotOptions buffered_options;
  buffered_options.force_buffered = true;
  auto buffered = LoadSnapshotMapped(path, buffered_options);
  ASSERT_TRUE(buffered.ok());
  EXPECT_FALSE(buffered.value().zero_copy());
  EXPECT_FALSE(buffered.value().graph().is_external_view());
  ExpectGraphsIdentical(mapped.value().graph(), buffered.value().graph());
}

TEST_F(SnapshotTest, CopyOfMappedViewStaysValidWhileMappingLives) {
  const CsrGraph original = MakeGrid(8, 8);
  const std::string path = Path("viewcopy.mhbc");
  ASSERT_TRUE(SaveSnapshot(original, path).ok());
  auto mapped = LoadSnapshotMapped(path);
  ASSERT_TRUE(mapped.ok());
  const CsrGraph copy = mapped.value().graph();  // copy of a view is a view
  EXPECT_TRUE(copy.is_external_view());
  ExpectGraphsIdentical(original, copy);
}

TEST_F(SnapshotTest, RejectsTruncatedFile) {
  const CsrGraph original = MakeGrid(10, 10);
  const std::string path = Path("truncated.mhbc");
  ASSERT_TRUE(SaveSnapshot(original, path).ok());
  const auto full = fs::file_size(path);
  fs::resize_file(path, full / 2);
  auto loaded = LoadSnapshotMapped(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("truncated"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(SnapshotTest, RejectsCorruptPayloadByChecksum) {
  const CsrGraph original = MakeGrid(10, 10);
  const std::string path = Path("corrupt.mhbc");
  ASSERT_TRUE(SaveSnapshot(original, path).ok());
  // Flip one byte in the middle of the arrays (past the 64-byte header).
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(static_cast<std::streamoff>(fs::file_size(path)) / 2);
  file.put('\x7f');
  file.close();
  auto loaded = LoadSnapshotMapped(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos)
      << loaded.status().ToString();

  // The corruption must also be visible to InspectSnapshot...
  auto info = InspectSnapshot(path);
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info.value().checksum_ok);

  // ...and skippable for callers that opt out of verification.
  SnapshotOptions trusting;
  trusting.verify_checksum = false;
  EXPECT_TRUE(LoadSnapshotMapped(path, trusting).ok());
}

TEST_F(SnapshotTest, RejectsVersionMismatch) {
  const CsrGraph original = MakeGrid(6, 6);
  const std::string path = Path("version.mhbc");
  ASSERT_TRUE(SaveSnapshot(original, path).ok());
  // Byte 8 holds the low byte of the little-endian format version.
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(8);
  file.put(static_cast<char>(kSnapshotFormatVersion + 1));
  file.close();
  auto loaded = LoadSnapshotMapped(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(SnapshotTest, RejectsOverflowingHeaderLengths) {
  const CsrGraph original = MakeGrid(6, 6);
  const std::string path = Path("overflow.mhbc");
  ASSERT_TRUE(SaveSnapshot(original, path).ok());
  // Patch the name-length field (bytes 40..47) to a value chosen to wrap
  // the reader's u64 size arithmetic; every loader must reject it
  // cleanly instead of building a 2^64-byte name.
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  const std::uint64_t huge = ~std::uint64_t{0} - 8;
  file.seekp(40);
  file.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  file.close();
  auto mapped = LoadSnapshotMapped(path);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kInvalidArgument);
  auto info = InspectSnapshot(path);
  ASSERT_FALSE(info.ok());
  EXPECT_EQ(info.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotTest, RejectsForeignFile) {
  const std::string path = Path("foreign.mhbc");
  std::ofstream(path) << "# definitely a text edge list\n0 1\n1 2\n";
  auto loaded = LoadSnapshotMapped(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotTest, RejectsEmptyGraphAndMissingFile) {
  EXPECT_FALSE(SaveSnapshot(CsrGraph(), Path("empty.mhbc")).ok());
  auto missing = LoadSnapshotMapped(Path("does-not-exist.mhbc"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIoError);
}

TEST_F(SnapshotTest, InspectReportsHeaderFields) {
  const CsrGraph original = WeightedTriangleChain();
  const std::string path = Path("inspect.mhbc");
  ASSERT_TRUE(SaveSnapshot(original, path).ok());
  auto info = InspectSnapshot(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().version, kSnapshotFormatVersion);
  EXPECT_TRUE(info.value().weighted);
  EXPECT_EQ(info.value().num_vertices, 5u);
  EXPECT_EQ(info.value().num_edges, 5u);
  EXPECT_EQ(info.value().name, "weighted-chain");
  EXPECT_TRUE(info.value().checksum_ok);
  EXPECT_EQ(info.value().file_bytes, fs::file_size(path));
}

// ------------------------------------------------- corruption fuzz sweep
//
// Loader hardening: every single-byte flip and every truncation of a
// valid snapshot must yield a clean Status error — never a crash, never
// a silently-accepted graph — under both the mmap and buffered paths.
// Byte flips are caught by header validation or the trailing checksum;
// truncations by the size reconciliation in ParseLayout.

/// Asserts that the file at `path` is rejected by every loader
/// configuration (mapped, buffered, inspect-accept) with a non-OK status.
void ExpectCleanRejection(const std::string& path, const std::string& what) {
  const auto mapped = LoadSnapshotMapped(path);
  EXPECT_FALSE(mapped.ok()) << what << ": mmap loader accepted";
  SnapshotOptions buffered_options;
  buffered_options.force_buffered = true;
  const auto buffered = LoadSnapshotMapped(path, buffered_options);
  EXPECT_FALSE(buffered.ok()) << what << ": buffered loader accepted";
  // InspectSnapshot may parse a header-intact file, but then it must
  // report the checksum mismatch instead of blessing the bytes.
  const auto info = InspectSnapshot(path);
  if (info.ok()) {
    EXPECT_FALSE(info.value().checksum_ok) << what << ": inspect blessed";
  }
}

class SnapshotFuzzTest : public SnapshotTest {
 protected:
  /// Writes a fresh valid snapshot and returns its path + byte size.
  std::string MakeValid(std::uint64_t* size_out) {
    const CsrGraph graph = MakeWattsStrogatz(120, 6, 0.1, 0xF422);
    const std::string path = Path("fuzz.mhbc");
    EXPECT_TRUE(SaveSnapshot(graph, path).ok());
    *size_out = fs::file_size(path);
    return path;
  }

  void FlipByteAt(const std::string& path, std::uint64_t offset) {
    std::fstream file(path,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(static_cast<std::streamoff>(offset));
    const int byte = file.get();
    file.seekp(static_cast<std::streamoff>(offset));
    file.put(static_cast<char>(static_cast<unsigned char>(byte) ^ 0xA5u));
  }
};

TEST_F(SnapshotFuzzTest, ByteFlipInEveryHeaderFieldIsRejected) {
  // One flip inside each header field: magic, version, byte-order marker,
  // flags, n, adjacency length, name length, reserved tail.
  const std::uint64_t field_offsets[] = {0, 8, 12, 16, 24, 32, 40, 48};
  for (const std::uint64_t field : field_offsets) {
    std::uint64_t size = 0;
    const std::string path = MakeValid(&size);
    FlipByteAt(path, field);
    ExpectCleanRejection(path, "header offset " + std::to_string(field));
  }
}

TEST_F(SnapshotFuzzTest, ByteFlipsAcrossTheBodyAreRejected) {
  // 64 deterministic-random offsets past the header (name, offsets,
  // adjacency, weights, checksum — wherever they land).
  std::uint64_t size = 0;
  MakeValid(&size);  // probe: fixes the byte size the offsets sample from
  ASSERT_GT(size, 72u);
  Rng rng(0xF1E5);
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t offset =
        64 + rng.NextBounded(size - 64);
    std::uint64_t fresh_size = 0;
    const std::string path = MakeValid(&fresh_size);
    ASSERT_EQ(fresh_size, size);
    FlipByteAt(path, offset);
    ExpectCleanRejection(path, "body offset " + std::to_string(offset));
  }
}

TEST_F(SnapshotFuzzTest, EveryTruncationPointIsRejected) {
  std::uint64_t size = 0;
  // Truncating at each header-field boundary plus 32 random interior
  // points; a shrunken file can never reconcile with its header.
  std::vector<std::uint64_t> cut_points = {0, 7, 8, 12, 16, 24, 32, 40,
                                           48, 63, 64, 72};
  {
    std::uint64_t probe_size = 0;
    const std::string probe = MakeValid(&probe_size);
    Rng rng(0x7A11);
    for (int i = 0; i < 32; ++i) {
      cut_points.push_back(rng.NextBounded(probe_size));
    }
    std::remove(probe.c_str());
  }
  for (const std::uint64_t cut : cut_points) {
    const std::string path = MakeValid(&size);
    ASSERT_LT(cut, size);
    fs::resize_file(path, cut);
    ExpectCleanRejection(path, "truncation at " + std::to_string(cut));
  }
}

TEST_F(SnapshotFuzzTest, GrowingTheFileIsRejected) {
  std::uint64_t size = 0;
  const std::string path = MakeValid(&size);
  std::ofstream(path, std::ios::binary | std::ios::app) << "garbage tail";
  ExpectCleanRejection(path, "appended bytes");
}

// The tentpole guarantee: a graph loaded from its snapshot produces
// bit-identical engine statistics to the same graph loaded from text.
TEST_F(SnapshotTest, SnapshotAndTextLoadGiveBitIdenticalEstimates) {
  const CsrGraph original = MakeBarabasiAlbert(400, 3, 0xBEE5);
  const std::string text_path = Path("roundtrip.txt");
  const std::string snap_path = Path("roundtrip.mhbc");
  ASSERT_TRUE(WriteEdgeList(original, text_path).ok());

  auto from_text = LoadSnapEdgeList(text_path, {});
  ASSERT_TRUE(from_text.ok());
  ASSERT_TRUE(SaveSnapshot(from_text.value(), snap_path).ok());
  auto mapped = LoadSnapshotMapped(snap_path);
  ASSERT_TRUE(mapped.ok());
  ExpectGraphsIdentical(from_text.value(), mapped.value().graph());

  EstimateRequest request;
  request.kind = EstimatorKind::kMetropolisHastings;
  request.samples = 500;
  request.seed = 0x5EED;
  BetweennessEngine text_engine(from_text.value());
  BetweennessEngine snap_engine(mapped.value().graph());
  for (VertexId r : {VertexId{0}, VertexId{7}, VertexId{123}}) {
    const auto a = text_engine.Estimate(r, request);
    const auto b = snap_engine.Estimate(r, request);
    ASSERT_TRUE(a.ok() && b.ok());
    // Statistical fields must match bit-for-bit (work accounting such as
    // sp_passes/cache_hit/seconds is outside the contract — engine.h).
    EXPECT_EQ(a.value().value, b.value().value);
    EXPECT_EQ(a.value().std_error, b.value().std_error);
    EXPECT_EQ(a.value().ci_half_width, b.value().ci_half_width);
    EXPECT_EQ(a.value().ess, b.value().ess);
    EXPECT_EQ(a.value().acceptance_rate, b.value().acceptance_rate);
    EXPECT_EQ(a.value().samples_used, b.value().samples_used);
    EXPECT_EQ(a.value().converged, b.value().converged);
  }
}

}  // namespace
}  // namespace mhbc
