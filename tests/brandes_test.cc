#include "exact/brandes.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace mhbc {
namespace {

/// Closed-form raw (ordered-pair) betweenness of path vertex i in P_n.
double PathRaw(VertexId i, VertexId n) {
  return 2.0 * static_cast<double>(i) * static_cast<double>(n - 1 - i);
}

TEST(BrandesTest, PathClosedForm) {
  constexpr VertexId kN = 7;
  const auto raw = ExactBetweenness(MakePath(kN), Normalization::kNone);
  for (VertexId v = 0; v < kN; ++v) {
    EXPECT_DOUBLE_EQ(raw[v], PathRaw(v, kN)) << "vertex " << v;
  }
}

TEST(BrandesTest, StarClosedForm) {
  constexpr VertexId kN = 9;
  const auto raw = ExactBetweenness(MakeStar(kN), Normalization::kNone);
  EXPECT_DOUBLE_EQ(raw[0], static_cast<double>((kN - 1) * (kN - 2)));
  for (VertexId v = 1; v < kN; ++v) EXPECT_DOUBLE_EQ(raw[v], 0.0);
}

TEST(BrandesTest, CompleteAllZero) {
  const auto raw = ExactBetweenness(MakeComplete(6), Normalization::kNone);
  for (double s : raw) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(BrandesTest, OddCycleClosedForm) {
  // Odd cycle C_n: raw per vertex = (n-1)(n-3)/4.
  for (VertexId n : {5u, 7u, 9u, 11u}) {
    const auto raw = ExactBetweenness(MakeCycle(n), Normalization::kNone);
    const double expected =
        static_cast<double>((n - 1) * (n - 3)) / 4.0;
    for (VertexId v = 0; v < n; ++v) {
      EXPECT_DOUBLE_EQ(raw[v], expected) << "n=" << n << " v=" << v;
    }
  }
}

TEST(BrandesTest, EvenCycleClosedForm) {
  // Even cycle C_n: raw per vertex = (n-2)^2 / 4.
  for (VertexId n : {4u, 6u, 8u, 10u}) {
    const auto raw = ExactBetweenness(MakeCycle(n), Normalization::kNone);
    const double expected = static_cast<double>((n - 2) * (n - 2)) / 4.0;
    for (VertexId v = 0; v < n; ++v) {
      EXPECT_DOUBLE_EQ(raw[v], expected) << "n=" << n << " v=" << v;
    }
  }
}

TEST(BrandesTest, CompleteBipartiteClosedForm) {
  // K_{a,b}: raw of an A-side vertex is b(b-1)/a.
  constexpr VertexId kA = 3, kB = 4;
  const auto raw =
      ExactBetweenness(MakeCompleteBipartite(kA, kB), Normalization::kNone);
  for (VertexId v = 0; v < kA; ++v) {
    EXPECT_DOUBLE_EQ(raw[v], static_cast<double>(kB * (kB - 1)) / kA);
  }
  for (VertexId v = kA; v < kA + kB; ++v) {
    EXPECT_DOUBLE_EQ(raw[v], static_cast<double>(kA * (kA - 1)) / kB);
  }
}

TEST(BrandesTest, BarbellBridgeClosedForm) {
  // Barbell(k, 1): the bridge vertex carries all k x k cross pairs.
  constexpr VertexId kClique = 5;
  const CsrGraph g = MakeBarbell(kClique, 1);
  const auto raw = ExactBetweenness(g, Normalization::kNone);
  const VertexId bridge = kClique;  // single bridge vertex id
  EXPECT_DOUBLE_EQ(raw[bridge],
                   2.0 * static_cast<double>(kClique) * kClique);
}

TEST(BrandesTest, PaperNormalizationDividesByNPairs) {
  constexpr VertexId kN = 10;
  const auto raw = ExactBetweenness(MakeStar(kN), Normalization::kNone);
  const auto paper = ExactBetweenness(MakeStar(kN), Normalization::kPaper);
  for (VertexId v = 0; v < kN; ++v) {
    EXPECT_DOUBLE_EQ(paper[v], raw[v] / (kN * (kN - 1.0)));
  }
  // Star center approaches 1 as n grows: (n-2)/n here.
  EXPECT_DOUBLE_EQ(paper[0], (kN - 2.0) / kN);
}

TEST(BrandesTest, UnorderedPairsNormalizationHalvesRaw) {
  const auto raw = ExactBetweenness(MakePath(6), Normalization::kNone);
  const auto classic =
      ExactBetweenness(MakePath(6), Normalization::kUnorderedPairs);
  for (VertexId v = 0; v < 6; ++v) {
    EXPECT_DOUBLE_EQ(classic[v], raw[v] / 2.0);
  }
}

TEST(BrandesTest, DisconnectedComponentsIndependent) {
  // Two disjoint paths: scores match the per-component closed forms.
  GraphBuilder b(6);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(3, 4);
  b.AddEdge(4, 5);
  const CsrGraph g = std::move(b.Build()).value();
  const auto raw = ExactBetweenness(g, Normalization::kNone);
  EXPECT_DOUBLE_EQ(raw[1], 2.0);
  EXPECT_DOUBLE_EQ(raw[4], 2.0);
  EXPECT_DOUBLE_EQ(raw[0], 0.0);
  EXPECT_DOUBLE_EQ(raw[5], 0.0);
}

TEST(BrandesTest, SingleMatchesFull) {
  const CsrGraph g = MakeBarabasiAlbert(60, 2, 21);
  const auto full = ExactBetweenness(g);
  for (VertexId v = 0; v < g.num_vertices(); v += 7) {
    EXPECT_NEAR(ExactBetweennessSingle(g, v), full[v], 1e-12);
  }
}

TEST(BrandesTest, WeightedUnitMatchesUnweighted) {
  const CsrGraph g = MakeGrid(4, 4);
  const CsrGraph wg = AssignUniformWeights(g, 1.0, 1.0, 5);
  const auto unweighted = ExactBetweenness(g);
  const auto weighted = ExactBetweenness(wg);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(unweighted[v], weighted[v], 1e-9);
  }
}

TEST(BrandesTest, WeightsRerouteBetweenness) {
  // Square 0-1-2-3-0. Make edges around vertex 1 cheap so pairs (0,2)
  // route through 1, not 3.
  GraphBuilder b(4);
  b.AddWeightedEdge(0, 1, 1.0);
  b.AddWeightedEdge(1, 2, 1.0);
  b.AddWeightedEdge(2, 3, 3.0);
  b.AddWeightedEdge(3, 0, 3.0);
  const CsrGraph g = std::move(b.Build()).value();
  const auto raw = ExactBetweenness(g, Normalization::kNone);
  EXPECT_GT(raw[1], 0.0);
  EXPECT_DOUBLE_EQ(raw[3], 0.0);
}

TEST(DependencyProfileTest, SumsToRawBetweenness) {
  const CsrGraph g = MakeBarabasiAlbert(50, 2, 31);
  const auto raw = ExactBetweenness(g, Normalization::kNone);
  for (VertexId r = 0; r < g.num_vertices(); r += 11) {
    const auto profile = DependencyProfile(g, r);
    double total = 0.0;
    for (double d : profile) total += d;
    EXPECT_NEAR(total, raw[r], 1e-9);
  }
}

TEST(DependencyProfileTest, ProfileEntryIsSourceDependency) {
  const CsrGraph g = MakeWheel(10);
  const auto profile = DependencyProfile(g, 0);
  EXPECT_DOUBLE_EQ(profile[0], 0.0);  // r's own dependency on itself
}

}  // namespace
}  // namespace mhbc
