#include "baselines/uniform_sampler.h"

#include <gtest/gtest.h>

#include "exact/brandes.h"
#include "graph/generators.h"

namespace mhbc {
namespace {

TEST(UniformSamplerTest, ExactOnFullEnumeration) {
  // With enough samples the estimate concentrates on the truth.
  const CsrGraph g = MakeStar(10);
  UniformSourceSampler sampler(g, 1);
  const double exact = ExactBetweennessSingle(g, 0);
  EXPECT_NEAR(sampler.Estimate(0, 20'000), exact, 0.02);
}

TEST(UniformSamplerTest, ZeroBetweennessVertexEstimatesZero) {
  const CsrGraph g = MakeStar(10);
  UniformSourceSampler sampler(g, 2);
  EXPECT_DOUBLE_EQ(sampler.Estimate(3, 500), 0.0);
}

TEST(UniformSamplerTest, DeterministicForSeed) {
  const CsrGraph g = MakeBarabasiAlbert(60, 2, 5);
  UniformSourceSampler a(g, 42);
  UniformSourceSampler b(g, 42);
  EXPECT_DOUBLE_EQ(a.Estimate(3, 200), b.Estimate(3, 200));
}

TEST(UniformSamplerTest, PassAccounting) {
  const CsrGraph g = MakeCycle(12);
  UniformSourceSampler sampler(g, 7);
  sampler.Estimate(0, 25);
  EXPECT_EQ(sampler.num_passes(), 25u);
}

TEST(UniformSamplerTest, UnbiasedAcrossRepetitions) {
  // Mean of many small-budget estimates approaches the truth (unbiased).
  const CsrGraph g = MakeBarbell(5, 1);
  const VertexId bridge = 5;
  const double exact = ExactBetweennessSingle(g, bridge);
  UniformSourceSampler sampler(g, 11);
  double acc = 0.0;
  constexpr int kReps = 300;
  for (int i = 0; i < kReps; ++i) acc += sampler.Estimate(bridge, 10);
  EXPECT_NEAR(acc / kReps, exact, 0.05 * exact + 0.01);
}

TEST(UniformSamplerTest, WorksOnWeightedGraphs) {
  const CsrGraph wg = AssignUniformWeights(MakeGrid(4, 4), 1.0, 1.0, 9);
  const CsrGraph g = MakeGrid(4, 4);
  UniformSourceSampler sampler(wg, 13);
  const double exact = ExactBetweennessSingle(g, 5);
  EXPECT_NEAR(sampler.Estimate(5, 5'000), exact, 0.05);
}

}  // namespace
}  // namespace mhbc
