#include "util/status.h"

#include <gtest/gtest.h>

namespace mhbc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  const Status st = Status::InvalidArgument("bad edge");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad edge");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad edge");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result(std::string("payload"));
  ASSERT_TRUE(result.ok());
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::IoError("disk"); };
  auto wrapper = [&fails]() -> Status {
    MHBC_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kIoError);
}

TEST(StatusMacroTest, ReturnIfErrorPassesOk) {
  auto succeeds = [] { return Status::Ok(); };
  auto wrapper = [&succeeds]() -> Status {
    MHBC_RETURN_IF_ERROR(succeeds());
    return Status::FailedPrecondition("reached end");
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace mhbc
