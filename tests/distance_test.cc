#include "sp/distance.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace mhbc {
namespace {

TEST(BfsDistancesTest, Path) {
  const auto dist = BfsDistances(MakePath(5), 2);
  EXPECT_EQ(dist[0], 2u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 0u);
  EXPECT_EQ(dist[4], 2u);
}

TEST(BfsDistancesTest, UnreachableMarked) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  const CsrGraph g = std::move(b.Build()).value();
  const auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachedDistance);
  EXPECT_EQ(dist[3], kUnreachedDistance);
}

TEST(DijkstraDistancesTest, WeightedPath) {
  GraphBuilder b(3);
  b.AddWeightedEdge(0, 1, 2.5);
  b.AddWeightedEdge(1, 2, 0.5);
  const CsrGraph g = std::move(b.Build()).value();
  const auto dist = DijkstraDistances(g, 0);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 2.5);
  EXPECT_DOUBLE_EQ(dist[2], 3.0);
}

TEST(DijkstraDistancesTest, UnweightedGraphUsesUnitWeights) {
  const CsrGraph g = MakeCycle(6);
  const auto bfs = BfsDistances(g, 0);
  const auto dij = DijkstraDistances(g, 0);
  for (VertexId v = 0; v < 6; ++v) {
    EXPECT_DOUBLE_EQ(dij[v], static_cast<double>(bfs[v]));
  }
}

TEST(DijkstraDistancesTest, UnreachableNegative) {
  GraphBuilder b(3);
  b.AddWeightedEdge(0, 1, 1.0);
  const CsrGraph g = std::move(b.Build()).value();
  EXPECT_LT(DijkstraDistances(g, 0)[2], 0.0);
}

TEST(DistanceAgreementTest, WeightedUnitEqualsBfsOnRandomGraph) {
  const CsrGraph g = MakeErdosRenyiGnm(70, 180, 3);
  const CsrGraph wg = AssignUniformWeights(g, 1.0, 1.0, 4);
  for (VertexId s = 0; s < 5; ++s) {
    const auto bfs = BfsDistances(g, s);
    const auto dij = DijkstraDistances(wg, s);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (bfs[v] == kUnreachedDistance) {
        EXPECT_LT(dij[v], 0.0);
      } else {
        EXPECT_DOUBLE_EQ(dij[v], static_cast<double>(bfs[v]));
      }
    }
  }
}

}  // namespace
}  // namespace mhbc
