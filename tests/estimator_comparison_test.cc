#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "centrality/api.h"
#include "core/theory.h"
#include "exact/brandes.h"
#include "graph/generators.h"

namespace mhbc {
namespace {

/// Cross-estimator property sweep: on separator-style targets every
/// estimator in the library agrees with the exact score at a generous
/// budget. Parameterized over (graph family, seed).
class EstimatorComparisonTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {
 protected:
  struct Case {
    CsrGraph graph;
    VertexId target;
  };

  Case MakeCase() const {
    const auto [family, seed] = GetParam();
    switch (family) {
      case 0: {
        // Barbell bridge.
        return {MakeBarbell(5, 1), 5};
      }
      case 1: {
        // Star center.
        return {MakeStar(24), 0};
      }
      default: {
        // Caveman gateway vertex (high betweenness).
        CsrGraph g = MakeConnectedCaveman(4, 6);
        return {std::move(g), 5};  // last vertex of community 0 (gateway)
      }
    }
  }
};

TEST_P(EstimatorComparisonTest, AllEstimatorsAgreeAtLargeBudget) {
  const Case c = MakeCase();
  const double exact = ExactBetweennessSingle(c.graph, c.target);
  ASSERT_GT(exact, 0.0);
  // The MH chain average converges to E_pi[f], not the exact score
  // (see core/theory.h); every other estimator here is unbiased.
  const double mh_reference =
      ChainLimitEstimate(DependencyProfile(c.graph, c.target));
  const auto [family, seed] = GetParam();
  for (EstimatorKind kind :
       {EstimatorKind::kMetropolisHastings, EstimatorKind::kUniformSource,
        EstimatorKind::kDistanceProportional, EstimatorKind::kShortestPath,
        EstimatorKind::kLinearScaling}) {
    EstimateOptions options;
    options.kind = kind;
    options.samples = 12'000;
    options.seed = seed;
    const auto result = EstimateBetweenness(c.graph, c.target, options);
    ASSERT_TRUE(result.ok()) << EstimatorKindName(kind);
    const double reference =
        kind == EstimatorKind::kMetropolisHastings ? mh_reference : exact;
    EXPECT_NEAR(result.value().value, reference, 0.12 * reference + 0.01)
        << EstimatorKindName(kind) << " family " << family;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndSeeds, EstimatorComparisonTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values<std::uint64_t>(5, 6)));

}  // namespace
}  // namespace mhbc
